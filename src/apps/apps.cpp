#include "apps/apps.hpp"

#include <memory>
#include <mutex>

namespace scaltool {

namespace {

// call_once so concurrent campaign jobs can race into the first
// registration safely; the contains() guard additionally tolerates a test
// that registered one of the names by hand before us.
std::once_flag standard_workloads_once;

void do_register_standard_workloads() {
  WorkloadRegistry& reg = WorkloadRegistry::instance();
  if (reg.contains("t3dheat")) return;  // already populated
  reg.register_workload("t3dheat",
                        [] { return std::unique_ptr<Workload>(new T3dheat); });
  reg.register_workload("hydro2d",
                        [] { return std::unique_ptr<Workload>(new Hydro2d); });
  reg.register_workload("swim",
                        [] { return std::unique_ptr<Workload>(new Swim); });
  reg.register_workload("fft",
                        [] { return std::unique_ptr<Workload>(new Fft); });
  reg.register_workload("lu",
                        [] { return std::unique_ptr<Workload>(new Lu); });
  reg.register_workload("sync_kernel", [] {
    return std::unique_ptr<Workload>(new SyncKernel);
  });
  reg.register_workload("spin_kernel", [] {
    return std::unique_ptr<Workload>(new SpinKernel);
  });
  reg.register_workload("compute_kernel", [] {
    return std::unique_ptr<Workload>(new ComputeKernel);
  });
  reg.register_workload("stream_kernel", [] {
    return std::unique_ptr<Workload>(new StreamKernel);
  });
  reg.register_workload("sharing_kernel", [] {
    return std::unique_ptr<Workload>(new SharingKernel);
  });
  reg.register_workload("lock_kernel", [] {
    return std::unique_ptr<Workload>(new LockKernel);
  });
}

}  // namespace

void register_standard_workloads() {
  std::call_once(standard_workloads_once, do_register_standard_workloads);
}

}  // namespace scaltool
