#include "apps/apps.hpp"

#include <memory>

namespace scaltool {

void register_standard_workloads() {
  WorkloadRegistry& reg = WorkloadRegistry::instance();
  if (reg.contains("t3dheat")) return;  // already populated
  reg.register_workload("t3dheat",
                        [] { return std::unique_ptr<Workload>(new T3dheat); });
  reg.register_workload("hydro2d",
                        [] { return std::unique_ptr<Workload>(new Hydro2d); });
  reg.register_workload("swim",
                        [] { return std::unique_ptr<Workload>(new Swim); });
  reg.register_workload("fft",
                        [] { return std::unique_ptr<Workload>(new Fft); });
  reg.register_workload("lu",
                        [] { return std::unique_ptr<Workload>(new Lu); });
  reg.register_workload("sync_kernel", [] {
    return std::unique_ptr<Workload>(new SyncKernel);
  });
  reg.register_workload("spin_kernel", [] {
    return std::unique_ptr<Workload>(new SpinKernel);
  });
  reg.register_workload("compute_kernel", [] {
    return std::unique_ptr<Workload>(new ComputeKernel);
  });
  reg.register_workload("stream_kernel", [] {
    return std::unique_ptr<Workload>(new StreamKernel);
  });
  reg.register_workload("sharing_kernel", [] {
    return std::unique_ptr<Workload>(new SharingKernel);
  });
  reg.register_workload("lock_kernel", [] {
    return std::unique_ptr<Workload>(new LockKernel);
  });
}

}  // namespace scaltool
