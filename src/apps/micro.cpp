#include "apps/micro.hpp"

#include "common/check.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {

namespace {
constexpr std::size_t kElem = 8;
}  // namespace

void StreamKernel::setup(AllocContext& alloc, const WorkloadParams& params,
                         int num_procs) {
  n_ = params.dataset_bytes / kElem;
  ST_CHECK(n_ >= static_cast<std::size_t>(num_procs));
  iters_ = params.iterations;
  nprocs_ = num_procs;
  a_ = alloc.allocate(n_ * kElem, "a");
}

void StreamKernel::run_phase(int phase, ProcContext& ctx) {
  const BlockRange range = block_range(n_, nprocs_, ctx.proc());
  if (phase == 0) {
    stream_write(ctx, a_, range.begin, range.size(), kElem, 1.0);
    return;
  }
  stream_read(ctx, a_, range.begin, range.size(), kElem, 2.0);
}

void SharingKernel::setup(AllocContext& alloc, const WorkloadParams& params,
                          int num_procs) {
  n_ = params.dataset_bytes / kElem;
  ST_CHECK(n_ >= static_cast<std::size_t>(num_procs));
  iters_ = params.iterations;
  nprocs_ = num_procs;
  a_ = alloc.allocate(n_ * kElem, "a");
}

void SharingKernel::run_phase(int phase, ProcContext& ctx) {
  const ProcId p = ctx.proc();
  if (phase == 0) {
    const BlockRange own = block_range(n_, nprocs_, p);
    stream_write(ctx, a_, own.begin, own.size(), kElem, 1.0);
    return;
  }
  // Read the left neighbour's block (written last phase), then rewrite our
  // own — every line of the neighbour block migrates here.
  const int left = (p + nprocs_ - 1) % nprocs_;
  const BlockRange theirs = block_range(n_, nprocs_, left);
  stream_read(ctx, a_, theirs.begin, theirs.size(), kElem, 1.0);
  const BlockRange own = block_range(n_, nprocs_, p);
  stream_write(ctx, a_, own.begin, own.size(), kElem, 1.0);
}

}  // namespace scaltool
