#include "apps/kernels.hpp"

#include "common/check.hpp"

namespace scaltool {

void SyncKernel::setup(AllocContext& alloc, const WorkloadParams& params,
                       int num_procs) {
  (void)alloc;
  (void)params;
  (void)num_procs;
  ST_CHECK(barriers_ >= 1);
}

void SyncKernel::run_phase(int phase, ProcContext& ctx) {
  (void)phase;
  // A couple of loop-control instructions between barriers; the barrier
  // cost itself is charged by the machine when the phase closes.
  ctx.compute(2.0);
}

void SpinKernel::setup(AllocContext& alloc, const WorkloadParams& params,
                       int num_procs) {
  (void)alloc;
  (void)params;
  (void)num_procs;
  ST_CHECK(phases_ >= 1);
  ST_CHECK(work_instr_ > 0.0);
}

void SpinKernel::run_phase(int phase, ProcContext& ctx) {
  (void)phase;
  if (ctx.proc() == 0) ctx.compute(work_instr_);
}

}  // namespace scaltool
