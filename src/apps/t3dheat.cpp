#include "apps/t3dheat.hpp"

#include "common/check.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {

namespace {
constexpr std::size_t kElem = 8;     // double
constexpr std::size_t kLine = 64;    // padding for reduction slots
}  // namespace

void T3dheat::setup(AllocContext& alloc, const WorkloadParams& params,
                    int num_procs) {
  n_ = params.dataset_bytes / kBytesPerPoint;
  ST_CHECK_MSG(n_ >= static_cast<std::size_t>(num_procs),
               "data set too small for " << num_procs << " processors");
  iters_ = params.iterations;
  ST_CHECK(iters_ >= 1);
  nprocs_ = num_procs;
  x_ = alloc.allocate(n_ * kElem, "x");
  r_ = alloc.allocate(n_ * kElem, "r");
  p_ = alloc.allocate(n_ * kElem, "p");
  q_ = alloc.allocate(n_ * kElem, "q");
  z_ = alloc.allocate(n_ * kElem, "z");
  partials_ = alloc.allocate(static_cast<std::size_t>(num_procs) * kLine,
                             "partials");
  scalars_ = alloc.allocate(kLine, "scalars");
}

int T3dheat::num_phases() const { return 1 + iters_ * kPhasesPerIter; }

void T3dheat::run_phase(int phase, ProcContext& ctx) {
  const ProcId p = ctx.proc();
  const BlockRange range = block_range(n_, nprocs_, p);
  const Addr partial_slot = partials_ + static_cast<Addr>(p) * kLine;

  if (phase == 0) {
    // Initialization: each processor first-touches its block of every
    // vector, placing the pages on its own node (block scheduling +
    // first-touch, the Origin defaults of Sec. 3).
    for (Addr base : {x_, r_, p_, q_, z_})
      stream_write(ctx, base, range.begin, range.size(), kElem,
                   /*flops_per_elem=*/1.0);
    return;
  }

  // Slice `s` of this processor's block (the PCF strips; each ends in a
  // barrier, so locality stays with the block owner).
  const auto slice = [&](int s) {
    BlockRange r;
    const std::size_t len = range.size();
    r.begin = range.begin + len * static_cast<std::size_t>(s) / kSlices;
    r.end = range.begin + len * static_cast<std::size_t>(s + 1) / kSlices;
    return r;
  };

  const int k = (phase - 1) % kPhasesPerIter;
  const auto serial_reduce = [&](Addr out) {
    if (p != 0) return;
    for (int i = 0; i < nprocs_; ++i)
      ctx.load(partials_ + static_cast<Addr>(i) * kLine);
    ctx.compute(static_cast<double>(nprocs_) + 4.0);
    ctx.store(out);
  };

  if (k < kSlices) {
    // q = A·p — 7-point stencil collapsed to a 3-point line sweep at the
    // same bytes/flops ratio, in barrier-separated strips.
    const BlockRange sr = slice(k);
    ctx.begin_region("spmv");
    stencil3(ctx, p_, q_, sr.begin, sr.size(), n_, kElem);
    ctx.end_region();
  } else if (k == kSlices) {
    // Partial dot product p·q.
    dot_partial(ctx, p_, q_, range.begin, range.size(), kElem, partial_slot);
  } else if (k == kSlices + 1) {
    // Serial reduction of the partials into alpha.
    serial_reduce(scalars_);
  } else if (k < 2 * kSlices + 2) {
    // x += alpha·p ; r −= alpha·q (fused vector update), in strips.
    const BlockRange sr = slice(k - (kSlices + 2));
    ctx.load(scalars_);
    for (std::size_t i = sr.begin; i < sr.end; ++i) {
      const Addr off = static_cast<Addr>(i * kElem);
      ctx.load(p_ + off);
      ctx.load(x_ + off);
      ctx.compute(2.0);
      ctx.store(x_ + off);
      ctx.load(q_ + off);
      ctx.load(r_ + off);
      ctx.compute(2.0);
      ctx.store(r_ + off);
    }
  } else if (k == 2 * kSlices + 2) {
    // Partial dot product r·r.
    dot_partial(ctx, r_, r_, range.begin, range.size(), kElem, partial_slot);
  } else if (k == 2 * kSlices + 3) {
    // Serial reduction for beta.
    serial_reduce(scalars_ + kElem);
  } else {
    // p = r + beta·p, in strips.
    const BlockRange sr = slice(k - (2 * kSlices + 4));
    ctx.load(scalars_ + kElem);
    for (std::size_t i = sr.begin; i < sr.end; ++i) {
      const Addr off = static_cast<Addr>(i * kElem);
      ctx.load(r_ + off);
      ctx.load(p_ + off);
      ctx.compute(2.0);
      ctx.store(p_ + off);
    }
  }
}

}  // namespace scaltool
