// Microkernels for calibration, tests and ablation benches.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/workload.hpp"

namespace scaltool {

/// Pure compute, no memory: measures the machine's base CPI directly.
class ComputeKernel final : public Workload {
 public:
  explicit ComputeKernel(double instr_per_phase = 10000.0)
      : instr_(instr_per_phase) {}
  std::string name() const override { return "compute_kernel"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }
  void setup(AllocContext&, const WorkloadParams&, int) override {}
  int num_phases() const override { return 4; }
  void run_phase(int, ProcContext& ctx) override { ctx.compute(instr_); }

 private:
  double instr_;
};

/// Block-partitioned streaming sweeps over one array sized by
/// dataset_bytes; repeated `iterations` times. The canonical workload for
/// exercising capacity behaviour: its L2 hit rate vs data-set size curve
/// has the exact Fig. 3-(a) shape.
class StreamKernel final : public Workload {
 public:
  std::string name() const override { return "stream_kernel"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }
  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override { return 1 + iters_; }
  void run_phase(int phase, ProcContext& ctx) override;

 private:
  std::size_t n_ = 0;
  int iters_ = 0;
  int nprocs_ = 0;
  Addr a_ = 0;
};

/// Producer-consumer sharing stress: in every phase each processor writes a
/// block and reads the block its left neighbour wrote in the previous
/// phase, generating dense coherence traffic. Used to validate the
/// directory and the coherence-miss classification.
class SharingKernel final : public Workload {
 public:
  std::string name() const override { return "sharing_kernel"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }
  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override { return 1 + iters_; }
  void run_phase(int phase, ProcContext& ctx) override;

 private:
  std::size_t n_ = 0;
  int iters_ = 0;
  int nprocs_ = 0;
  Addr a_ = 0;
};

/// Lock-contention stress: every processor repeatedly enters the same
/// critical section. Used to validate the lock timeline and the
/// synchronization accounting on lock-based (PCF) codes.
class LockKernel final : public Workload {
 public:
  explicit LockKernel(int sections_per_phase = 8, double cs_instr = 200.0)
      : sections_(sections_per_phase), cs_instr_(cs_instr) {}
  std::string name() const override { return "lock_kernel"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kPCF;
  }
  void setup(AllocContext&, const WorkloadParams&, int) override {}
  int num_phases() const override { return 4; }
  void run_phase(int, ProcContext& ctx) override {
    for (int i = 0; i < sections_; ++i) {
      ctx.compute(50.0);
      ctx.critical_section(/*lock_id=*/0, cs_instr_);
    }
  }

 private:
  int sections_;
  double cs_instr_;
};

}  // namespace scaltool
