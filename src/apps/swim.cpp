#include "apps/swim.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {

namespace {
constexpr std::size_t kElem = 8;
}  // namespace

void Swim::setup(AllocContext& alloc, const WorkloadParams& params,
                 int num_procs) {
  ST_CHECK(boundary_frac_ >= 0.0 && boundary_frac_ < 0.5);
  n_ = params.dataset_bytes / kBytesPerPoint;
  ST_CHECK_MSG(n_ >= static_cast<std::size_t>(num_procs),
               "data set too small for " << num_procs << " processors");
  iters_ = params.iterations;
  ST_CHECK(iters_ >= 1);
  nprocs_ = num_procs;
  const double total_work = 3.0 * static_cast<double>(n_);
  boundary_elems_ = static_cast<std::size_t>(boundary_frac_ * total_work);
  boundary_elems_ = std::min(boundary_elems_, n_);
  u_ = alloc.allocate(n_ * kElem, "u");
  v_ = alloc.allocate(n_ * kElem, "v");
  p_ = alloc.allocate(n_ * kElem, "p");
  unew_ = alloc.allocate(n_ * kElem, "unew");
  vnew_ = alloc.allocate(n_ * kElem, "vnew");
  pnew_ = alloc.allocate(n_ * kElem, "pnew");
}

int Swim::num_phases() const { return 1 + iters_ * kPhasesPerIter; }

void Swim::run_phase(int phase, ProcContext& ctx) {
  const ProcId proc = ctx.proc();
  const BlockRange range = block_range(n_, nprocs_, proc);

  if (phase == 0) {
    for (Addr base : {u_, v_, p_, unew_, vnew_, pnew_})
      stream_write(ctx, base, range.begin, range.size(), kElem, 1.0);
    return;
  }

  // Under the row partition each sweep reads whole boundary rows of the
  // neighbouring processors — lines the neighbours wrote in the previous
  // sweep. This true sharing is the "non-synchronization data sharing"
  // that Sec. 4.3 blames for the model/measurement divergence at 32.
  const auto halo = [&](Addr array) {
    if (nprocs_ == 1) return;
    const std::size_t h = std::min(halo_elems_, range.size());
    for (std::size_t k = 1; k <= h; ++k) {
      if (range.begin >= k)
        ctx.load(array + static_cast<Addr>((range.begin - k) * kElem));
      if (range.end + k <= n_)
        ctx.load(array + static_cast<Addr>((range.end + k - 1) * kElem));
      ctx.compute(1.0);
    }
  };

  switch ((phase - 1) % kPhasesPerIter) {
    case 0:
      halo(p_);
      stencil3(ctx, p_, unew_, range.begin, range.size(), n_, kElem,
               /*flops_per_elem=*/10.0);
      break;
    case 1:
      halo(u_);
      stencil3(ctx, u_, vnew_, range.begin, range.size(), n_, kElem,
               /*flops_per_elem=*/10.0);
      break;
    case 2: {
      // pnew = stencil(v); then the new fields are copied back in place.
      halo(v_);
      stencil3(ctx, v_, pnew_, range.begin, range.size(), n_, kElem,
                /*flops_per_elem=*/10.0);
      for (std::size_t i = range.begin; i < range.end; ++i) {
        const Addr off = static_cast<Addr>(i * kElem);
        ctx.load(unew_ + off);
        ctx.store(u_ + off);
        ctx.load(vnew_ + off);
        ctx.store(v_ + off);
        ctx.load(pnew_ + off);
        ctx.store(p_ + off);
        ctx.compute(9.0);
      }
      // Periodic-boundary fix-up: a fixed chunk of extra work pinned to
      // processor 0 — the "modest" imbalance of Sec. 4.3.
      if (proc == 0 && nprocs_ > 1) {
        ctx.begin_region("boundary_fixup");
        const std::size_t span = std::max<std::size_t>(1, range.size());
        for (std::size_t i = 0; i < boundary_elems_; ++i) {
          const Addr off = static_cast<Addr>((i % span) * kElem);
          ctx.load(p_ + off);
          ctx.compute(10.0);
          ctx.store(p_ + off);
        }
        ctx.end_region();
      }
      break;
    }
    default:
      ST_CHECK_MSG(false, "unreachable phase " << phase);
  }
}

}  // namespace scaltool
