// Hydro2d: shallow-water sweeps with large serial sections (modelled on
// SPECFP95 Hydro2d of Table 4: MP DOACROSS parallelism, "modest scalability
// (9 at 32 processors). Large serial sections").
//
// Each iteration runs three parallel sweeps and one serial section executed
// by processor 0 while everyone else spins at the closing barrier — the
// paper's load-imbalance bottleneck, which Figure 9 shows dominating this
// application. The serial fraction defaults to ≈8% of the work, which by
// Amdahl's law caps the 32-processor speedup near 9.
#pragma once

#include <cstddef>

#include "trace/workload.hpp"

namespace scaltool {

class Hydro2d final : public Workload {
 public:
  /// `serial_frac` is the fraction of per-iteration work done serially.
  explicit Hydro2d(double serial_frac = 0.19) : serial_frac_(serial_frac) {}

  std::string name() const override { return "hydro2d"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override;
  void run_phase(int phase, ProcContext& ctx) override;

  static constexpr std::size_t kBytesPerPoint = 4 * 8;

 private:
  static constexpr int kPhasesPerIter = 4;

  double serial_frac_;
  std::size_t n_ = 0;
  std::size_t serial_elems_ = 0;
  int iters_ = 0;
  int nprocs_ = 0;
  Addr u_ = 0, v_ = 0, h_ = 0, tmp_ = 0;
};

}  // namespace scaltool
