#include "apps/fft.hpp"

#include <bit>

#include "common/check.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {

namespace {
constexpr std::size_t kElem = 8;
}  // namespace

void Fft::setup(AllocContext& alloc, const WorkloadParams& params,
                int num_procs) {
  ST_CHECK(transpose_frac_ >= 0.0 && transpose_frac_ <= 1.0);
  n_ = std::bit_floor(params.dataset_bytes / kBytesPerPoint);
  ST_CHECK_MSG(n_ >= static_cast<std::size_t>(num_procs) * 2,
               "data set too small for " << num_procs << " processors");
  stages_ = std::countr_zero(n_);
  iters_ = params.iterations;
  ST_CHECK(iters_ >= 1);
  nprocs_ = num_procs;
  re_ = alloc.allocate(n_ * kElem, "re");
  im_ = alloc.allocate(n_ * kElem, "im");
}

int Fft::num_phases() const {
  // init + per iteration: `stages_` butterfly phases + 1 transpose phase.
  return 1 + iters_ * (stages_ + 1);
}

void Fft::run_phase(int phase, ProcContext& ctx) {
  const ProcId p = ctx.proc();
  const BlockRange range = block_range(n_, nprocs_, p);

  if (phase == 0) {
    for (Addr base : {re_, im_})
      stream_write(ctx, base, range.begin, range.size(), kElem, 1.0);
    return;
  }

  const int k = (phase - 1) % (stages_ + 1);
  if (k < stages_) {
    // Butterfly stage k: pair (i, i ^ 2^k). Each processor updates its own
    // block; partners beyond the block edge read remote data (sharing that
    // grows with the stage distance).
    const std::size_t stride = std::size_t{1} << k;
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const std::size_t partner = i ^ stride;
      ctx.load(re_ + static_cast<Addr>(i * kElem));
      ctx.load(im_ + static_cast<Addr>(i * kElem));
      ctx.load(re_ + static_cast<Addr>(partner * kElem));
      ctx.load(im_ + static_cast<Addr>(partner * kElem));
      ctx.compute(10.0);  // complex multiply-add + twiddle
      ctx.store(re_ + static_cast<Addr>(i * kElem));
      ctx.store(im_ + static_cast<Addr>(i * kElem));
    }
  } else {
    // Transpose: each processor reads a stripe from every other block —
    // the all-to-all. The stripe length scales with transpose_frac.
    ctx.begin_region("transpose");
    for (int q = 0; q < nprocs_; ++q) {
      if (q == p) continue;
      const BlockRange theirs = block_range(n_, nprocs_, q);
      const auto stripe = static_cast<std::size_t>(
          transpose_frac_ * static_cast<double>(theirs.size()) /
          static_cast<double>(nprocs_));
      for (std::size_t i = 0; i < stripe; ++i) {
        const std::size_t idx = theirs.begin + i;
        ctx.load(re_ + static_cast<Addr>(idx * kElem));
        ctx.compute(1.0);
      }
    }
    ctx.end_region();
  }
}

}  // namespace scaltool
