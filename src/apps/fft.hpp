// FFT: butterfly stages with an all-to-all transpose (beyond the paper's
// three applications — a workload whose bottleneck is *communication*, the
// case Scal-Tool's Coh(s0,n) machinery and the sharing extension exist
// for).
//
// Structure per iteration: log2(N) barrier-separated butterfly stages over
// a block-partitioned array, followed by a transpose phase in which every
// processor reads one block stripe from every other processor — dense
// all-to-all coherence traffic that grows with the processor count.
#pragma once

#include <cstddef>

#include "trace/workload.hpp"

namespace scaltool {

class Fft final : public Workload {
 public:
  /// `transpose_frac` sets how much of the array each processor pulls from
  /// remote blocks during the transpose (1.0 = the full classic
  /// all-to-all).
  explicit Fft(double transpose_frac = 0.5)
      : transpose_frac_(transpose_frac) {}

  std::string name() const override { return "fft"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override;
  void run_phase(int phase, ProcContext& ctx) override;

  static constexpr std::size_t kBytesPerPoint = 2 * 8;  // re + im

 private:
  double transpose_frac_;
  std::size_t n_ = 0;
  int stages_ = 0;
  int iters_ = 0;
  int nprocs_ = 0;
  Addr re_ = 0, im_ = 0;
};

}  // namespace scaltool
