// Convenience umbrella: all bundled workloads plus registry population.
#pragma once

#include "apps/fft.hpp"
#include "apps/hydro2d.hpp"
#include "apps/kernels.hpp"
#include "apps/lu.hpp"
#include "apps/micro.hpp"
#include "apps/swim.hpp"
#include "apps/t3dheat.hpp"
#include "trace/registry.hpp"

namespace scaltool {

/// Registers every bundled workload in the process-wide registry.
/// Idempotent: safe to call more than once.
void register_standard_workloads();

}  // namespace scaltool
