// Swim: shallow-water relaxation stencils (modelled on SPECFP95 Swim of
// Table 4: MP DOACROSS, "good scalability (24 at 32 processors). Good load
// balance").
//
// Three stencil sweeps per iteration over the velocity/pressure arrays.
// Two deliberate second-order effects reproduce the paper's Section 4.3:
//  - processor 0 handles the periodic-boundary fix-up (a small fixed amount
//    of extra work), the "modest magnitude" load imbalance that caps the
//    32-processor speedup near 24; and
//  - the stencils read across block boundaries and each sweep writes arrays
//    the neighbour read, so the boundary lines migrate between caches —
//    the "non-synchronization data sharing" that makes the Scal-Tool MP
//    estimate diverge from the speedshop measurement by ~14% at 32
//    processors (Fig. 13).
#pragma once

#include <cstddef>

#include "trace/workload.hpp"

namespace scaltool {

class Swim final : public Workload {
 public:
  /// `boundary_frac` sizes processor 0's periodic-boundary work as a
  /// fraction of total per-iteration work. `halo_elems` is how far each
  /// sweep reads into the neighbouring processors' rows (the 2-D row
  /// partition shares whole boundary rows, not single elements); this is
  /// the "non-synchronization data sharing" behind Fig. 13's divergence.
  explicit Swim(double boundary_frac = 0.075, std::size_t halo_elems = 48)
      : boundary_frac_(boundary_frac), halo_elems_(halo_elems) {}

  std::string name() const override { return "swim"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override;
  void run_phase(int phase, ProcContext& ctx) override;

  static constexpr std::size_t kBytesPerPoint = 6 * 8;

 private:
  static constexpr int kPhasesPerIter = 3;

  double boundary_frac_;
  std::size_t halo_elems_;
  std::size_t n_ = 0;
  std::size_t boundary_elems_ = 0;
  int iters_ = 0;
  int nprocs_ = 0;
  Addr u_ = 0, v_ = 0, p_ = 0, unew_ = 0, vnew_ = 0, pnew_ = 0;
};

}  // namespace scaltool
