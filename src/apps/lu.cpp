#include "apps/lu.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {

void Lu::setup(AllocContext& alloc, const WorkloadParams& params,
               int num_procs) {
  dim_ = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(params.dataset_bytes / kElem)));
  ST_CHECK_MSG(dim_ >= static_cast<std::size_t>(num_procs) * 2,
               "matrix too small for " << num_procs << " processors");
  // One elimination step per "iteration", spread over the matrix: use
  // iterations as a multiplier on a base of dim/8 steps so run length
  // scales the same way as the other applications.
  steps_ = std::max(1, static_cast<int>(dim_) / 8 * params.iterations / 3);
  steps_ = std::min<int>(steps_, static_cast<int>(dim_) - 2);
  nprocs_ = num_procs;
  a_ = alloc.allocate(dim_ * dim_ * kElem, "A");
}

int Lu::num_phases() const { return 1 + steps_ * kPhasesPerStep; }

void Lu::run_phase(int phase, ProcContext& ctx) {
  const ProcId p = ctx.proc();

  if (phase == 0) {
    // First touch by block rows.
    const BlockRange rows = block_range(dim_, nprocs_, p);
    for (std::size_t r = rows.begin; r < rows.end; ++r)
      stream_write(ctx, a_, index(r, 0), dim_, kElem, 0.5);
    return;
  }

  const int step = (phase - 1) / kPhasesPerStep;
  const int k = (phase - 1) % kPhasesPerStep;
  // Eliminations progress through the matrix; spread the simulated steps
  // evenly over the rows so late phases work on a small trailing block.
  const auto pivot = static_cast<std::size_t>(
      static_cast<double>(step) / steps_ * (static_cast<double>(dim_) - 2.0));
  const std::size_t trailing = dim_ - pivot - 1;

  if (k == 0) {
    // Panel factorization: the pivot row's owner scales the panel alone.
    const BlockRange rows = block_range(dim_, nprocs_, p);
    if (pivot >= rows.begin && pivot < rows.end) {
      ctx.begin_region("panel");
      for (std::size_t c = pivot; c < dim_; ++c) {
        ctx.load(a_ + static_cast<Addr>(index(pivot, c) * kElem));
        ctx.compute(6.0);
        ctx.store(a_ + static_cast<Addr>(index(pivot, c) * kElem));
      }
      ctx.end_region();
    }
    return;
  }

  // Trailing-submatrix update: rows below the pivot, block-partitioned
  // over the *remaining* rows — the shrinking parallel section.
  const BlockRange mine = block_range(trailing, nprocs_, p);
  for (std::size_t i = mine.begin; i < mine.end; ++i) {
    const std::size_t row = pivot + 1 + i;
    // Read the pivot row (owned by one processor: read sharing) and update
    // a strip of our row.
    const std::size_t strip = std::min<std::size_t>(trailing, 64);
    for (std::size_t c = 0; c < strip; ++c) {
      const std::size_t col = pivot + 1 + c;
      ctx.load(a_ + static_cast<Addr>(index(pivot, col) * kElem));
      ctx.load(a_ + static_cast<Addr>(index(row, col) * kElem));
      ctx.compute(2.0);
      ctx.store(a_ + static_cast<Addr>(index(row, col) * kElem));
    }
  }
}

}  // namespace scaltool
