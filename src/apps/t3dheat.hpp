// T3dheat: conjugate-gradient PDE solver (modelled on the LANL code of
// Table 4: "PDE solver using conjug. gradient", PCF directives with
// explicit barriers, excellent load balance, data set ≈ 10× the L2).
//
// Each CG iteration runs seven barrier-separated phases: the stencil
// matrix-vector product, two dot products with their serial reductions, and
// two vector updates. The heavy cross-iteration reuse of the five CG
// vectors is what makes insufficient caching space nearly double the
// 1-processor execution time, and the high barrier frequency is what makes
// synchronization dominate at large processor counts — the two signature
// behaviours of Figure 6.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/workload.hpp"

namespace scaltool {

class T3dheat final : public Workload {
 public:
  std::string name() const override { return "t3dheat"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kPCF;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override;
  void run_phase(int phase, ProcContext& ctx) override;

  /// Bytes per grid point across the five CG vectors.
  static constexpr std::size_t kBytesPerPoint = 5 * 8;

 private:
  /// The PCF source barriers after every parallel loop slice (the code
  /// runs its sweeps in `istep` strips); each CG iteration therefore
  /// executes 3 sliced sweeps plus two dot/reduce pairs. The high barrier
  /// frequency is what makes synchronization the dominant multiprocessor
  /// cost at scale (Fig. 6).
  static constexpr int kSlices = 8;
  static constexpr int kPhasesPerIter = 3 * kSlices + 4;

  std::size_t n_ = 0;  ///< grid points
  int iters_ = 0;
  int nprocs_ = 0;
  Addr x_ = 0, r_ = 0, p_ = 0, q_ = 0, z_ = 0;
  Addr partials_ = 0;  ///< per-processor line-padded reduction slots
  Addr scalars_ = 0;   ///< alpha/beta, shared by everyone
};

}  // namespace scaltool
