// Hardware event-counter identifiers.
//
// The paper's inputs are the MIPS R10000 performance counters exposed by
// SGI's perfex (Zagha et al. [25]): cycles, graduated instructions,
// graduated loads/stores, primary/secondary data-cache misses, and "store to
// a line already in shared state" (the nt_syn counter of Sec. 2.4.2). Our
// simulated processors maintain the same set; everything the Scal-Tool model
// consumes flows through these counters and nothing else.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace scaltool {

enum class EventId : int {
  kCycles = 0,                ///< processor cycles (busy incl. spinning)
  kGraduatedInstructions,     ///< committed instructions
  kGraduatedLoads,            ///< committed loads
  kGraduatedStores,           ///< committed stores
  kL1DMisses,                 ///< primary data-cache misses
  kL2Misses,                  ///< secondary cache misses (data)
  kStoreToShared,             ///< stores hitting a line held in Shared state
  kInvalidationsReceived,     ///< external invalidations applied to caches
  kInterventionsReceived,     ///< dirty-data interventions served
  kL2Writebacks,              ///< dirty L2 lines written back to memory
  kTlbMisses,                 ///< data-TLB misses (when the TLB is enabled)
  kBarriers,                  ///< barrier episodes participated in
  kLockAcquires,              ///< lock acquisitions
  kRemoteMemAccesses,         ///< L2 misses homed on a remote node
  kLocalMemAccesses,          ///< L2 misses homed on the local node
  kCount                      // sentinel
};

inline constexpr std::size_t kNumEvents =
    static_cast<std::size_t>(EventId::kCount);

/// Short stable name for reports and CSV headers.
std::string_view event_name(EventId id);

/// All event ids, for iteration.
std::array<EventId, kNumEvents> all_events();

}  // namespace scaltool
