// Per-processor counter storage and run-level snapshots with the derived
// metrics of the paper's CPI algebra.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "counters/events.hpp"

namespace scaltool {

/// One processor's event counters. Values are doubles: cycle counts carry
/// sub-cycle CPI contributions, and event counts stay exact up to 2^53.
class CounterSet {
 public:
  double get(EventId id) const { return values_[index(id)]; }
  void add(EventId id, double v) {
    ST_DCHECK(v >= 0.0);
    values_[index(id)] += v;
  }
  void set(EventId id, double v) { values_[index(id)] = v; }

  /// Element-wise sum, used to aggregate processors.
  CounterSet& operator+=(const CounterSet& other) {
    for (std::size_t i = 0; i < kNumEvents; ++i) values_[i] += other.values_[i];
    return *this;
  }

  void reset() { values_.fill(0.0); }

 private:
  static std::size_t index(EventId id) {
    const auto i = static_cast<std::size_t>(id);
    ST_DCHECK(i < kNumEvents);
    return i;
  }
  std::array<double, kNumEvents> values_{};
};

/// The per-run metrics Scal-Tool's equations consume (Sec. 2.1 / Eq. 6-7):
///   cpi       — cycles per graduated instruction
///   h2        — (L1D misses − L2 misses) / instructions
///   hm        — L2 misses / instructions
///   l1_hitr   — 1 − L1D misses / (loads+stores)
///   l2_hitr   — local L2 hit rate: 1 − L2 misses / L1D misses
///   mem_frac  — m(s,n) = (loads+stores) / instructions
struct DerivedMetrics {
  double cpi = 0.0;
  double h2 = 0.0;
  double hm = 0.0;
  double l1_hitr = 1.0;
  double l2_hitr = 1.0;
  double mem_frac = 0.0;
  double instructions = 0.0;   ///< total graduated instructions
  double cycles = 0.0;         ///< accumulated cycles over all processors
  double store_to_shared = 0.0;
  /// Coherence-transaction counts (the R10000 exposes external
  /// interventions and invalidations as events 12/13); the sharing
  /// extension of the model reads them.
  double interventions = 0.0;
  double invalidations = 0.0;
};

/// Counters of a complete run: one CounterSet per processor plus helpers.
class CounterSnapshot {
 public:
  CounterSnapshot() = default;
  explicit CounterSnapshot(int num_procs) : per_proc_(num_procs) {}

  int num_procs() const { return static_cast<int>(per_proc_.size()); }
  CounterSet& proc(int p) { return per_proc_.at(p); }
  const CounterSet& proc(int p) const { return per_proc_.at(p); }

  /// Sum over all processors.
  CounterSet aggregate() const;

  /// Accumulated-cycles view of a single event (per processor).
  std::vector<double> per_proc_values(EventId id) const;

  /// Execution time = cycle count of the slowest processor. With busy-wait
  /// spinning all processors finish together, so this ≈ aggregate cycles / n.
  double execution_time() const;

  /// Derived metrics over the aggregate counters.
  DerivedMetrics derived() const;

  /// Human-readable dump (perfex-style), one line per event.
  std::string to_string() const;

 private:
  std::vector<CounterSet> per_proc_;
};

}  // namespace scaltool
