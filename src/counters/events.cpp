#include "counters/events.hpp"

#include "common/check.hpp"

namespace scaltool {

std::string_view event_name(EventId id) {
  switch (id) {
    case EventId::kCycles: return "cycles";
    case EventId::kGraduatedInstructions: return "grad_instr";
    case EventId::kGraduatedLoads: return "grad_loads";
    case EventId::kGraduatedStores: return "grad_stores";
    case EventId::kL1DMisses: return "l1d_misses";
    case EventId::kL2Misses: return "l2_misses";
    case EventId::kStoreToShared: return "store_to_shared";
    case EventId::kInvalidationsReceived: return "invalidations_recv";
    case EventId::kInterventionsReceived: return "interventions_recv";
    case EventId::kL2Writebacks: return "l2_writebacks";
    case EventId::kTlbMisses: return "tlb_misses";
    case EventId::kBarriers: return "barriers";
    case EventId::kLockAcquires: return "lock_acquires";
    case EventId::kRemoteMemAccesses: return "remote_mem_accesses";
    case EventId::kLocalMemAccesses: return "local_mem_accesses";
    case EventId::kCount: break;
  }
  ST_CHECK_MSG(false, "invalid EventId");
}

std::array<EventId, kNumEvents> all_events() {
  std::array<EventId, kNumEvents> ids{};
  for (std::size_t i = 0; i < kNumEvents; ++i)
    ids[i] = static_cast<EventId>(i);
  return ids;
}

}  // namespace scaltool
