#include "counters/counter_set.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace scaltool {

CounterSet CounterSnapshot::aggregate() const {
  CounterSet sum;
  for (const auto& cs : per_proc_) sum += cs;
  return sum;
}

std::vector<double> CounterSnapshot::per_proc_values(EventId id) const {
  std::vector<double> out;
  out.reserve(per_proc_.size());
  for (const auto& cs : per_proc_) out.push_back(cs.get(id));
  return out;
}

double CounterSnapshot::execution_time() const {
  double mx = 0.0;
  for (const auto& cs : per_proc_) mx = std::max(mx, cs.get(EventId::kCycles));
  return mx;
}

DerivedMetrics CounterSnapshot::derived() const {
  const CounterSet agg = aggregate();
  DerivedMetrics d;
  d.cycles = agg.get(EventId::kCycles);
  d.instructions = agg.get(EventId::kGraduatedInstructions);
  d.store_to_shared = agg.get(EventId::kStoreToShared);
  d.interventions = agg.get(EventId::kInterventionsReceived);
  d.invalidations = agg.get(EventId::kInvalidationsReceived);
  const double loads = agg.get(EventId::kGraduatedLoads);
  const double stores = agg.get(EventId::kGraduatedStores);
  const double mem = loads + stores;
  const double l1m = agg.get(EventId::kL1DMisses);
  const double l2m = agg.get(EventId::kL2Misses);
  ST_CHECK_MSG(d.instructions > 0.0, "snapshot has no graduated instructions");
  d.cpi = d.cycles / d.instructions;
  d.h2 = (l1m - l2m) / d.instructions;
  d.hm = l2m / d.instructions;
  d.mem_frac = mem / d.instructions;
  d.l1_hitr = mem > 0.0 ? 1.0 - l1m / mem : 1.0;
  d.l2_hitr = l1m > 0.0 ? 1.0 - l2m / l1m : 1.0;
  return d;
}

std::string CounterSnapshot::to_string() const {
  const CounterSet agg = aggregate();
  std::ostringstream os;
  os << "counters (" << per_proc_.size() << " procs, aggregate):\n";
  for (EventId id : all_events()) {
    os << "  " << std::left << std::setw(20) << event_name(id) << " "
       << std::fixed << std::setprecision(0) << agg.get(id) << "\n";
  }
  return os.str();
}

}  // namespace scaltool
