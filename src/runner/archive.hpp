// Persistence for the Scal-Tool measurement matrix.
//
// The paper counts "output files" as a first-class cost (Table 1: one file
// per run, 2n−1 in total). This module is that file layer: a measurement
// campaign saves its ScalToolInputs to a single plain-text archive and the
// analysis can be re-run later — or on another machine — without touching
// the simulator. Bench binaries also use it to avoid recollecting.
//
// Format: line-oriented, '|'-separated records with a versioned header.
// Only the counter-derived quantities the model consumes are stored.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/inputs.hpp"

namespace scaltool {

/// Serializes the inputs. Throws CheckError on I/O failure.
void save_inputs(const ScalToolInputs& inputs, const std::string& path);
void write_inputs(const ScalToolInputs& inputs, std::ostream& os);

// Record-level pieces of the archive format, shared with the campaign
// engine's persistent run cache (src/engine/run_cache) so every tool that
// stores counter records speaks the same dialect.

/// Splits one '|'-separated archive line into its fields.
std::vector<std::string> split_record(const std::string& line);

/// Writes/parses one counter record line ("TAG|workload|...", 16 fields).
void write_run_record(std::ostream& os, const char* tag, const RunRecord& r);
RunRecord parse_run_record(const std::vector<std::string>& fields);

/// Writes/parses one validation side-band line ("VALID|...", 9 fields).
void write_validation_record(std::ostream& os, const ValidationRecord& v);
ValidationRecord parse_validation_record(
    const std::vector<std::string>& fields);

/// Deserializes; validates the result. Throws CheckError on malformed
/// content, version mismatch or I/O failure.
ScalToolInputs load_inputs(const std::string& path);
ScalToolInputs read_inputs(std::istream& is);

}  // namespace scaltool
