#include "runner/runner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "apps/apps.hpp"
#include "apps/kernels.hpp"
#include "common/check.hpp"
#include "obs/telemetry.hpp"
#include "tools/speedshop.hpp"
#include "trace/registry.hpp"

namespace scaltool {

RunRecord make_record(const RunResult& result) {
  RunRecord rec;
  rec.workload = result.workload;
  rec.dataset_bytes = result.dataset_bytes;
  rec.num_procs = result.num_procs;
  rec.metrics = result.counters.derived();
  rec.execution_cycles = result.execution_cycles;
  return rec;
}

ValidationRecord make_validation(const RunResult& result) {
  ValidationRecord v;
  v.num_procs = result.num_procs;
  v.accumulated_cycles = result.accumulated_cycles;
  const SpeedshopProfile prof = speedshop_profile(result);
  v.mp_cycles = prof.mp_cycles();
  v.sync_cycles = prof.barrier_cycles;
  v.spin_cycles = prof.wait_cycles;
  const ProcGroundTruth agg = result.truth.aggregate();
  v.compulsory_misses = agg.compulsory_misses;
  v.coherence_misses = agg.coherence_misses;
  v.conflict_misses = agg.conflict_misses;
  return v;
}

ExperimentRunner::ExperimentRunner(const MachineConfig& base_config)
    : base_(base_config) {
  base_.validate();
}

MachineConfig ExperimentRunner::config_for(int num_procs) const {
  MachineConfig cfg = base_;
  cfg.num_procs = num_procs;
  cfg.validate();
  return cfg;
}

WorkloadParams ExperimentRunner::params_for(std::size_t dataset_bytes) const {
  WorkloadParams params;
  params.dataset_bytes = dataset_bytes;
  params.iterations = iterations;
  return params;
}

RunResult ExperimentRunner::run_full(Workload& workload,
                                     std::size_t dataset_bytes,
                                     int num_procs) const {
  obs::Span span("runner.run", "runner");
  span.arg("workload", workload.name())
      .arg("bytes", dataset_bytes)
      .arg("procs", num_procs);
  if (on_run) {
    std::ostringstream os;
    os << workload.name() << " s=" << dataset_bytes << " p=" << num_procs;
    on_run(os.str());
  }
  DsmMachine machine(config_for(num_procs));
  return machine.run(workload, params_for(dataset_bytes));
}

RunResult ExperimentRunner::run_full(const std::string& workload,
                                     std::size_t dataset_bytes,
                                     int num_procs) const {
  register_standard_workloads();
  const auto w = WorkloadRegistry::instance().create(workload);
  return run_full(*w, dataset_bytes, num_procs);
}

RunRecord ExperimentRunner::run(const std::string& workload,
                                std::size_t dataset_bytes,
                                int num_procs) const {
  return make_record(run_full(workload, dataset_bytes, num_procs));
}

MatrixPlan ExperimentRunner::plan_matrix(
    const std::string& workload, std::size_t s0,
    std::span<const int> proc_counts) const {
  ST_CHECK(!proc_counts.empty());
  ST_CHECK_MSG(proc_counts.front() == 1,
               "the measurement matrix must include a 1-processor run");

  MatrixPlan plan;
  plan.app = workload;
  plan.s0 = s0;
  plan.l2_bytes = base_.l2.size_bytes;

  std::map<std::tuple<std::string, std::size_t, int>, std::size_t> index;
  const auto add_job = [&](const std::string& w, std::size_t bytes, int n,
                           bool want_validation) {
    const auto key = std::make_tuple(w, bytes, n);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, plan.jobs.size()).first;
      plan.jobs.push_back({w, bytes, n, want_validation});
    }
    plan.jobs[it->second].want_validation |= want_validation;
    return it->second;
  };

  for (int n : proc_counts)
    plan.base_jobs.push_back(add_job(workload, s0, n, true));

  // Uniprocessor sweep — the same halving-plus-calibration schedule as
  // collect(); the s0 point dedupes onto the 1-processor base run.
  plan.uni_jobs.push_back(add_job(workload, s0, 1, false));
  const std::size_t floor_bytes = base_.l1.size_bytes / 2;
  std::size_t s = s0 / 2;
  int overflow_points = s0 > 2 * base_.l2.size_bytes ? 1 : 0;
  while (s >= std::max<std::size_t>(floor_bytes / 2, 1_KiB)) {
    plan.uni_jobs.push_back(add_job(workload, s, 1, false));
    if (s > 2 * base_.l2.size_bytes) ++overflow_points;
    if (s < floor_bytes) break;
    s /= 2;
  }
  const std::size_t l2 = base_.l2.size_bytes;
  for (const std::size_t mult_x4 : {10u, 16u, 24u, 32u}) {
    if (overflow_points >= 3) break;
    const std::size_t cal = l2 * mult_x4 / 4;
    const bool have = std::any_of(
        plan.uni_jobs.begin(), plan.uni_jobs.end(), [&](std::size_t j) {
          return plan.jobs[j].dataset_bytes == cal;
        });
    if (have || cal <= 2 * l2) continue;
    plan.uni_jobs.push_back(add_job(workload, cal, 1, false));
    ++overflow_points;
  }
  std::sort(plan.uni_jobs.begin(), plan.uni_jobs.end(),
            [&](std::size_t a, std::size_t b) {
              return plan.jobs[a].dataset_bytes > plan.jobs[b].dataset_bytes;
            });

  for (int n : proc_counts) {
    if (n == 1) continue;
    MatrixPlan::KernelJobs kj;
    kj.num_procs = n;
    kj.sync_job = add_job("sync_kernel", 1_KiB, n, false);
    kj.spin_job = add_job("spin_kernel", 1_KiB, n, false);
    plan.kernel_jobs.push_back(kj);
  }
  return plan;
}

ScalToolInputs assemble_matrix(const MatrixPlan& plan,
                               std::span<const JobOutcome> outcomes) {
  ST_CHECK_MSG(outcomes.size() == plan.jobs.size(),
               "outcomes do not match the plan: " << outcomes.size()
                                                  << " vs "
                                                  << plan.jobs.size());
  ScalToolInputs inputs;
  inputs.app = plan.app;
  inputs.s0 = plan.s0;
  inputs.l2_bytes = plan.l2_bytes;
  for (std::size_t j : plan.base_jobs) {
    inputs.base_runs.push_back(outcomes[j].record);
    inputs.validation.push_back(outcomes[j].validation);
  }
  for (std::size_t j : plan.uni_jobs)
    inputs.uni_runs.push_back(outcomes[j].record);
  for (const MatrixPlan::KernelJobs& kj : plan.kernel_jobs) {
    KernelMeasurement km;
    km.num_procs = kj.num_procs;
    km.sync_kernel = outcomes[kj.sync_job].record;
    km.spin_kernel = outcomes[kj.spin_job].record;
    inputs.kernels.push_back(km);
  }
  inputs.validate();
  return inputs;
}

namespace {

/// Rebuilds a lost uniprocessor sweep record by interpolating every
/// counter-derived quantity between its surviving neighbours, linearly in
/// log2 of the data-set size (hit-rate curves are near-linear there —
/// Sec. 2.4.1 interpolates exactly this curve for s0/n).
RunRecord interpolate_uni_record(const RunSpec& spec, const RunRecord& lo,
                                 const RunRecord& hi) {
  const double x = std::log2(static_cast<double>(spec.dataset_bytes));
  const double xa = std::log2(static_cast<double>(lo.dataset_bytes));
  const double xb = std::log2(static_cast<double>(hi.dataset_bytes));
  const double t = (x - xa) / (xb - xa);
  const auto lerp = [t](double a, double b) { return a + t * (b - a); };
  // Instruction counts grow with the data set, so interpolate them in
  // log space to respect the geometric sweep schedule.
  const auto geo = [&lerp](double a, double b) {
    return std::exp2(lerp(std::log2(a), std::log2(b)));
  };
  RunRecord r;
  r.workload = spec.workload;
  r.dataset_bytes = spec.dataset_bytes;
  r.num_procs = 1;
  r.metrics.cpi = lerp(lo.metrics.cpi, hi.metrics.cpi);
  r.metrics.h2 = lerp(lo.metrics.h2, hi.metrics.h2);
  r.metrics.hm = lerp(lo.metrics.hm, hi.metrics.hm);
  r.metrics.l1_hitr = lerp(lo.metrics.l1_hitr, hi.metrics.l1_hitr);
  r.metrics.l2_hitr = lerp(lo.metrics.l2_hitr, hi.metrics.l2_hitr);
  r.metrics.mem_frac = lerp(lo.metrics.mem_frac, hi.metrics.mem_frac);
  r.metrics.instructions = geo(std::max(lo.metrics.instructions, 1.0),
                               std::max(hi.metrics.instructions, 1.0));
  r.metrics.cycles = r.metrics.cpi * r.metrics.instructions;
  r.metrics.store_to_shared = geo(std::max(lo.metrics.store_to_shared, 1.0),
                                  std::max(hi.metrics.store_to_shared, 1.0));
  r.execution_cycles = r.metrics.cycles;  // one processor: exec == aggregate
  return r;
}

}  // namespace

ScalToolInputs assemble_matrix_partial(const MatrixPlan& plan,
                                       std::span<const JobOutcome> outcomes,
                                       const std::vector<bool>& available,
                                       DegradedAssembly* degraded_out) {
  ST_CHECK_MSG(outcomes.size() == plan.jobs.size(),
               "outcomes do not match the plan: " << outcomes.size()
                                                  << " vs "
                                                  << plan.jobs.size());
  ST_CHECK_MSG(available.size() == plan.jobs.size(),
               "availability mask does not match the plan");
  DegradedAssembly deg;

  ScalToolInputs inputs;
  inputs.app = plan.app;
  inputs.s0 = plan.s0;
  inputs.l2_bytes = plan.l2_bytes;

  // Base runs carry the quantity under study; fabricating one would make
  // the whole report fiction, so a lost base run is a hard error with a
  // message precise enough to rerun it by hand.
  for (std::size_t j : plan.base_jobs) {
    const RunSpec& spec = plan.jobs[j];
    ST_CHECK_MSG(available[j],
                 "base run (" << spec.workload << ", s=" << spec.dataset_bytes
                              << ", n=" << spec.num_procs
                              << ") is unrecoverable; the matrix cannot be "
                                 "assembled without it — rerun that job");
    inputs.base_runs.push_back(outcomes[j].record);
    inputs.validation.push_back(outcomes[j].validation);
  }

  // The smallest sweep point anchors pi0 (Lubeck's method); there is
  // nothing below it to interpolate from.
  ST_CHECK(!plan.uni_jobs.empty());
  {
    const std::size_t anchor = plan.uni_jobs.back();
    const RunSpec& spec = plan.jobs[anchor];
    ST_CHECK_MSG(available[anchor],
                 "pi0 anchor run (" << spec.workload << ", s="
                                    << spec.dataset_bytes
                                    << ", n=1) is unrecoverable; the model "
                                       "cannot be anchored without it");
  }

  // Missing interior sweep points interpolate between surviving
  // neighbours (uni_jobs is sorted by descending data-set size). The
  // small end is anchored by the check above and the s0 point is a base
  // run, but calibration points larger than s0 have no guaranteed larger
  // neighbour: when one is lost it is dropped — honestly shrinking the
  // overflow fit — rather than extrapolated.
  for (std::size_t p = 0; p < plan.uni_jobs.size(); ++p) {
    const std::size_t j = plan.uni_jobs[p];
    const RunSpec& spec = plan.jobs[j];
    if (available[j]) {
      inputs.uni_runs.push_back(outcomes[j].record);
      continue;
    }
    std::size_t lo = p;
    while (lo > 0 && !available[plan.uni_jobs[lo - 1]]) --lo;
    if (lo == 0) {
      ++deg.dropped_points;
      std::ostringstream os;
      os << "uni run (" << spec.workload << ", s=" << spec.dataset_bytes
         << ") dropped: no larger surviving point to interpolate from";
      deg.notes.push_back(os.str());
      continue;
    }
    --lo;
    // The smallest point is guaranteed available (anchor check), so this
    // scan terminates.
    std::size_t hi = p + 1;
    while (!available[plan.uni_jobs[hi]]) ++hi;
    inputs.uni_runs.push_back(interpolate_uni_record(
        spec, outcomes[plan.uni_jobs[lo]].record,
        outcomes[plan.uni_jobs[hi]].record));
    ++deg.interpolated_runs;
    std::ostringstream os;
    os << "uni run (" << spec.workload << ", s=" << spec.dataset_bytes
       << ") interpolated between s="
       << plan.jobs[plan.uni_jobs[lo]].dataset_bytes << " and s="
       << plan.jobs[plan.uni_jobs[hi]].dataset_bytes;
    deg.notes.push_back(os.str());
  }

  // Kernel records substitute across machine sizes: the kernels measure
  // per-size CPIs that vary slowly with n, so the nearest surviving size
  // (in log2 distance) is the least-wrong stand-in.
  const auto nearest_kernel = [&](const char* which,
                                  std::size_t MatrixPlan::KernelJobs::*job,
                                  int n) -> const RunRecord* {
    const RunRecord* best = nullptr;
    double best_dist = 0.0;
    for (const MatrixPlan::KernelJobs& kj : plan.kernel_jobs) {
      if (!available[kj.*job]) continue;
      const double dist = std::abs(std::log2(static_cast<double>(n)) -
                                   std::log2(static_cast<double>(kj.num_procs)));
      if (best == nullptr || dist < best_dist) {
        best = &outcomes[kj.*job].record;
        best_dist = dist;
      }
    }
    ST_CHECK_MSG(best != nullptr, "no " << which
                                        << " kernel run survived at any "
                                           "machine size; the MP split "
                                           "cannot be estimated");
    return best;
  };
  for (const MatrixPlan::KernelJobs& kj : plan.kernel_jobs) {
    KernelMeasurement km;
    km.num_procs = kj.num_procs;
    if (available[kj.sync_job]) {
      km.sync_kernel = outcomes[kj.sync_job].record;
    } else {
      km.sync_kernel =
          *nearest_kernel("sync", &MatrixPlan::KernelJobs::sync_job,
                          kj.num_procs);
      ++deg.substituted_kernels;
      std::ostringstream os;
      os << "sync kernel at n=" << kj.num_procs << " substituted from n="
         << km.sync_kernel.num_procs;
      deg.notes.push_back(os.str());
      km.sync_kernel.num_procs = kj.num_procs;
    }
    if (available[kj.spin_job]) {
      km.spin_kernel = outcomes[kj.spin_job].record;
    } else {
      km.spin_kernel =
          *nearest_kernel("spin", &MatrixPlan::KernelJobs::spin_job,
                          kj.num_procs);
      ++deg.substituted_kernels;
      std::ostringstream os;
      os << "spin kernel at n=" << kj.num_procs << " substituted from n="
         << km.spin_kernel.num_procs;
      deg.notes.push_back(os.str());
      km.spin_kernel.num_procs = kj.num_procs;
    }
    inputs.kernels.push_back(km);
  }

  inputs.notes = deg.notes;
  inputs.validate();
  if (degraded_out) *degraded_out = std::move(deg);
  return inputs;
}

ScalToolInputs ExperimentRunner::collect(
    const std::string& workload, std::size_t s0,
    std::span<const int> proc_counts) const {
  register_standard_workloads();
  return collect(
      [&workload] {
        return WorkloadRegistry::instance().create(workload);
      },
      workload, s0, proc_counts);
}

ScalToolInputs ExperimentRunner::collect(
    const std::function<std::unique_ptr<Workload>()>& factory,
    const std::string& label, std::size_t s0,
    std::span<const int> proc_counts) const {
  obs::Span span("runner.collect", "runner");
  span.arg("app", label).arg("s0", s0);
  ST_CHECK(!proc_counts.empty());
  ST_CHECK_MSG(proc_counts.front() == 1,
               "the measurement matrix must include a 1-processor run");
  ST_CHECK(factory != nullptr);
  register_standard_workloads();

  ScalToolInputs inputs;
  inputs.app = label;
  inputs.s0 = s0;
  inputs.l2_bytes = base_.l2.size_bytes;

  // Base runs (s0, n) — and their validation side-band.
  for (int n : proc_counts) {
    const auto w = factory();
    const RunResult result = run_full(*w, s0, n);
    inputs.base_runs.push_back(make_record(result));
    inputs.validation.push_back(make_validation(result));
  }

  // Uniprocessor sweep: s0, s0/2, ... until well inside the L1 (pi0
  // anchor). The s0 point is shared with base_runs but re-recorded for
  // clarity (a real campaign reuses the same output file, per Table 3).
  inputs.uni_runs.push_back(inputs.base_runs.front());
  const std::size_t floor_bytes = base_.l1.size_bytes / 2;
  std::size_t s = s0 / 2;
  int overflow_points = s0 > 2 * base_.l2.size_bytes ? 1 : 0;
  while (s >= std::max<std::size_t>(floor_bytes / 2, 1_KiB)) {
    const auto sweep_w = factory();
    inputs.uni_runs.push_back(make_record(run_full(*sweep_w, s, 1)));
    if (s > 2 * base_.l2.size_bytes) ++overflow_points;
    if (s < floor_bytes) break;
    s /= 2;
  }

  // The t2/tm least-squares fit needs ≥3 triplets that overflow the L2
  // (Sec. 2.3). Applications whose s0 is close to the L2 capacity (like
  // Hydro2d's 2.6×) do not get them from the halving sweep alone, so add
  // calibration sizes.
  const std::size_t l2 = base_.l2.size_bytes;
  for (const std::size_t mult_x4 : {10u, 16u, 24u, 32u}) {  // 2.5×..8× L2
    if (overflow_points >= 3) break;
    const std::size_t cal = l2 * mult_x4 / 4;
    const bool have = std::any_of(
        inputs.uni_runs.begin(), inputs.uni_runs.end(),
        [&](const RunRecord& r) { return r.dataset_bytes == cal; });
    if (have || cal <= 2 * l2) continue;
    const auto cal_w = factory();
    inputs.uni_runs.push_back(make_record(run_full(*cal_w, cal, 1)));
    ++overflow_points;
  }
  std::sort(inputs.uni_runs.begin(), inputs.uni_runs.end(),
            [](const RunRecord& a, const RunRecord& b) {
              return a.dataset_bytes > b.dataset_bytes;
            });

  // Kernels per machine size (n > 1; MP effects are zero at n = 1).
  for (int n : proc_counts) {
    if (n == 1) continue;
    KernelMeasurement km;
    km.num_procs = n;
    SyncKernel sync_kernel;
    SpinKernel spin_kernel;
    km.sync_kernel = make_record(run_full(sync_kernel, /*dataset=*/1_KiB, n));
    km.spin_kernel = make_record(run_full(spin_kernel, /*dataset=*/1_KiB, n));
    inputs.kernels.push_back(km);
  }

  inputs.validate();
  return inputs;
}

namespace {

RunRecord make_region_record(const RunResult& result,
                             const std::string& region) {
  const auto it = result.regions.find(region);
  ST_CHECK_MSG(it != result.regions.end(),
               "run of " << result.workload << " has no region named "
                         << region);
  RunRecord rec;
  rec.workload = result.workload + ":" + region;
  rec.dataset_bytes = result.dataset_bytes;
  rec.num_procs = result.num_procs;
  rec.metrics = it->second.derived();
  // The segment's "execution time": its accumulated cycles spread over the
  // processors that executed it.
  rec.execution_cycles =
      it->second.aggregate().get(EventId::kCycles) / result.num_procs;
  return rec;
}

}  // namespace

ScalToolInputs ExperimentRunner::collect_region(
    const std::string& workload, const std::string& region, std::size_t s0,
    std::span<const int> proc_counts) const {
  ST_CHECK(!proc_counts.empty());
  ST_CHECK_MSG(proc_counts.front() == 1,
               "the measurement matrix must include a 1-processor run");
  register_standard_workloads();

  ScalToolInputs inputs;
  inputs.app = workload + ":" + region;
  inputs.s0 = s0;
  inputs.l2_bytes = base_.l2.size_bytes;

  for (int n : proc_counts)
    inputs.base_runs.push_back(
        make_region_record(run_full(workload, s0, n), region));

  inputs.uni_runs.push_back(inputs.base_runs.front());
  const std::size_t floor_bytes = base_.l1.size_bytes / 2;
  std::size_t s = s0 / 2;
  int overflow_points = s0 > 2 * base_.l2.size_bytes ? 1 : 0;
  while (s >= std::max<std::size_t>(floor_bytes / 2, 1_KiB)) {
    inputs.uni_runs.push_back(
        make_region_record(run_full(workload, s, 1), region));
    if (s > 2 * base_.l2.size_bytes) ++overflow_points;
    if (s < floor_bytes) break;
    s /= 2;
  }
  // Calibration sizes, exactly as in the whole-program campaign.
  const std::size_t l2 = base_.l2.size_bytes;
  for (const std::size_t mult_x4 : {10u, 16u, 24u, 32u}) {
    if (overflow_points >= 3) break;
    const std::size_t cal = l2 * mult_x4 / 4;
    const bool have = std::any_of(
        inputs.uni_runs.begin(), inputs.uni_runs.end(),
        [&](const RunRecord& r) { return r.dataset_bytes == cal; });
    if (have || cal <= 2 * l2) continue;
    inputs.uni_runs.push_back(
        make_region_record(run_full(workload, cal, 1), region));
    ++overflow_points;
  }
  std::sort(inputs.uni_runs.begin(), inputs.uni_runs.end(),
            [](const RunRecord& a, const RunRecord& b) {
              return a.dataset_bytes > b.dataset_bytes;
            });

  for (int n : proc_counts) {
    if (n == 1) continue;
    KernelMeasurement km;
    km.num_procs = n;
    SyncKernel sync_kernel;
    SpinKernel spin_kernel;
    km.sync_kernel = make_record(run_full(sync_kernel, 1_KiB, n));
    km.spin_kernel = make_record(run_full(spin_kernel, 1_KiB, n));
    inputs.kernels.push_back(km);
  }
  inputs.validate();
  return inputs;
}

std::vector<int> default_proc_counts(int max_procs) {
  std::vector<int> counts;
  for (int n = 1; n <= max_procs; n *= 2) counts.push_back(n);
  return counts;
}

}  // namespace scaltool
