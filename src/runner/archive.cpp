#include "runner/archive.hpp"

#include <fcntl.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/crc32.hpp"
#include "io/env.hpp"

namespace scaltool {

namespace {

constexpr const char* kMagic = "scaltool-inputs";
constexpr int kVersion = 2;

double to_double(const std::string& s) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;  // unified CheckError below
  }
  ST_CHECK_MSG(pos == s.size(), "malformed number in archive: " << s);
  return v;
}

std::size_t to_size(const std::string& s) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  ST_CHECK_MSG(pos == s.size(), "malformed count in archive: " << s);
  return static_cast<std::size_t>(v);
}

int to_int(const std::string& s) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  ST_CHECK_MSG(pos == s.size(), "malformed integer in archive: " << s);
  return v;
}

}  // namespace

std::vector<std::string> split_record(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, '|')) fields.push_back(field);
  return fields;
}

void write_run_record(std::ostream& os, const char* tag, const RunRecord& r) {
  const DerivedMetrics& d = r.metrics;
  os << tag << '|' << r.workload << '|' << r.dataset_bytes << '|'
     << r.num_procs << '|' << std::setprecision(17) << d.cpi << '|' << d.h2
     << '|' << d.hm << '|' << d.l1_hitr << '|' << d.l2_hitr << '|'
     << d.mem_frac << '|' << d.instructions << '|' << d.cycles << '|'
     << d.store_to_shared << '|' << d.interventions << '|'
     << d.invalidations << '|' << r.execution_cycles << '\n';
}

RunRecord parse_run_record(const std::vector<std::string>& f) {
  ST_CHECK_MSG(f.size() == 16, "record with " << f.size()
                                              << " fields, expected 16");
  RunRecord r;
  r.workload = f[1];
  r.dataset_bytes = to_size(f[2]);
  r.num_procs = to_int(f[3]);
  r.metrics.cpi = to_double(f[4]);
  r.metrics.h2 = to_double(f[5]);
  r.metrics.hm = to_double(f[6]);
  r.metrics.l1_hitr = to_double(f[7]);
  r.metrics.l2_hitr = to_double(f[8]);
  r.metrics.mem_frac = to_double(f[9]);
  r.metrics.instructions = to_double(f[10]);
  r.metrics.cycles = to_double(f[11]);
  r.metrics.store_to_shared = to_double(f[12]);
  r.metrics.interventions = to_double(f[13]);
  r.metrics.invalidations = to_double(f[14]);
  r.execution_cycles = to_double(f[15]);
  return r;
}

void write_validation_record(std::ostream& os, const ValidationRecord& v) {
  os << "VALID|" << v.num_procs << '|' << std::setprecision(17)
     << v.accumulated_cycles << '|' << v.mp_cycles << '|' << v.sync_cycles
     << '|' << v.spin_cycles << '|' << v.compulsory_misses << '|'
     << v.coherence_misses << '|' << v.conflict_misses << '\n';
}

ValidationRecord parse_validation_record(
    const std::vector<std::string>& fields) {
  ST_CHECK_MSG(fields.size() == 9,
               "VALID record with " << fields.size() << " fields");
  ValidationRecord v;
  v.num_procs = to_int(fields[1]);
  v.accumulated_cycles = to_double(fields[2]);
  v.mp_cycles = to_double(fields[3]);
  v.sync_cycles = to_double(fields[4]);
  v.spin_cycles = to_double(fields[5]);
  v.compulsory_misses = to_double(fields[6]);
  v.coherence_misses = to_double(fields[7]);
  v.conflict_misses = to_double(fields[8]);
  return v;
}

void write_inputs(const ScalToolInputs& inputs, std::ostream& os) {
  inputs.validate();
  // Render into a buffer first: the SUM footer is a CRC-32 over every
  // byte that precedes it, so a hostile filesystem (or a torn rename)
  // cannot truncate or flip the file without the reader noticing.
  std::ostringstream body;
  body << kMagic << '|' << kVersion << '|' << inputs.app << '|' << inputs.s0
       << '|' << inputs.l2_bytes << '\n';
  for (const RunRecord& r : inputs.base_runs)
    write_run_record(body, "BASE", r);
  for (const RunRecord& r : inputs.uni_runs) write_run_record(body, "UNI", r);
  for (const KernelMeasurement& k : inputs.kernels) {
    write_run_record(body, "SYNCK", k.sync_kernel);
    write_run_record(body, "SPINK", k.spin_kernel);
  }
  for (const ValidationRecord& v : inputs.validation)
    write_validation_record(body, v);
  // Degradation provenance travels with the data: an archive assembled from
  // a faulty campaign says so. Written only when present, so fault-free
  // archives stay byte-identical (modulo the footer) to files without
  // notes.
  for (const std::string& note : inputs.notes) {
    std::string clean = note;
    for (char& c : clean) {
      if (c == '\n') c = ' ';  // records are line-oriented
    }
    // The reader takes the whole rest of the line as the payload, so the
    // field separator may appear verbatim — the planner's "PLAN|..."
    // provenance notes round-trip exactly.
    body << "NOTE|" << clean << '\n';
  }
  const std::string bytes = body.str();
  os << bytes << "SUM|" << std::hex << std::setfill('0') << std::setw(8)
     << crc32(bytes) << std::dec << std::setfill(' ') << '\n';
}

void save_inputs(const ScalToolInputs& inputs, const std::string& path) {
  // Rendered in memory, written through the storage environment: archive
  // bytes are a durability promise, so every write and the close are
  // checked (an ofstream would swallow a failing close) and the fault
  // drills can exercise this path like any other writer.
  std::ostringstream rendered;
  write_inputs(inputs, rendered);
  const std::string bytes = rendered.str();
  io::Env& env = io::Env::instance();
  const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    const int err = errno;
    std::ostringstream msg;
    msg << "cannot open " << path << " for writing: " << std::strerror(err);
    if (io::is_storage_errno(err)) throw io::StorageError(msg.str(), err);
    ST_CHECK_MSG(false, msg.str());
  }
  try {
    io::write_all(env, fd, bytes.data(), bytes.size(), path);
  } catch (...) {
    env.close(fd);
    throw;
  }
  if (env.close(fd) != 0) {
    const int err = errno;
    throw io::StorageError(
        "close of " + path + " failed: " + std::strerror(err), err);
  }
}

ScalToolInputs read_inputs(std::istream& is) {
  std::string line;
  ST_CHECK_MSG(static_cast<bool>(std::getline(is, line)), "empty archive");
  const auto header = split_record(line);
  ST_CHECK_MSG(header.size() == 5 && header[0] == kMagic,
               "not a scaltool-inputs archive");
  ST_CHECK_MSG(to_int(header[1]) == kVersion,
               "unsupported archive version " << header[1]);
  ScalToolInputs inputs;
  inputs.app = header[2];
  inputs.s0 = to_size(header[3]);
  inputs.l2_bytes = to_size(header[4]);

  // Whole-file integrity: a SUM footer, when present, carries the CRC-32
  // of every byte before it. Verified incrementally as lines stream past;
  // files without a footer (pre-footer archives, hand-built fixtures) are
  // still accepted — the footer is a guarantee, not a gate.
  std::uint32_t crc_state = crc32_update(crc32_init(), line + "\n");
  bool footer_seen = false;

  KernelMeasurement pending_kernel;
  bool have_sync = false;
  while (std::getline(is, line)) {
    ST_CHECK_MSG(!footer_seen,
                 "archive records after the SUM footer (appended after "
                 "publication?)");
    if (line.rfind("SUM|", 0) == 0) {
      const auto fields = split_record(line);
      ST_CHECK_MSG(fields.size() == 2, "malformed SUM footer");
      std::uint32_t stored = 0;
      try {
        std::size_t pos = 0;
        stored =
            static_cast<std::uint32_t>(std::stoul(fields[1], &pos, 16));
        ST_CHECK(pos == fields[1].size());
      } catch (const std::exception&) {
        ST_CHECK_MSG(false, "malformed SUM footer checksum " << fields[1]);
      }
      const std::uint32_t actual = crc32_final(crc_state);
      ST_CHECK_MSG(stored == actual,
                   "archive failed its whole-file checksum (SUM footer says "
                       << fields[1] << ", contents hash to " << std::hex
                       << actual << std::dec
                       << ") — the file was modified or torn after "
                          "publication; `scaltool fsck` can diagnose it");
      footer_seen = true;
      continue;
    }
    crc_state = crc32_update(crc_state, line + "\n");
    if (line.empty()) continue;
    const auto fields = split_record(line);
    ST_CHECK_MSG(!fields.empty(), "blank record");
    const std::string& tag = fields[0];
    if (tag == "BASE") {
      inputs.base_runs.push_back(parse_run_record(fields));
    } else if (tag == "UNI") {
      inputs.uni_runs.push_back(parse_run_record(fields));
    } else if (tag == "SYNCK") {
      ST_CHECK_MSG(!have_sync, "two sync-kernel records without a spin "
                               "kernel between them");
      pending_kernel.sync_kernel = parse_run_record(fields);
      pending_kernel.num_procs = pending_kernel.sync_kernel.num_procs;
      have_sync = true;
    } else if (tag == "SPINK") {
      ST_CHECK_MSG(have_sync, "spin-kernel record without a sync kernel");
      pending_kernel.spin_kernel = parse_run_record(fields);
      ST_CHECK(pending_kernel.spin_kernel.num_procs ==
               pending_kernel.num_procs);
      inputs.kernels.push_back(pending_kernel);
      have_sync = false;
    } else if (tag == "VALID") {
      inputs.validation.push_back(parse_validation_record(fields));
    } else if (tag == "NOTE") {
      inputs.notes.push_back(line.size() > 5 ? line.substr(5) : "");
    } else {
      ST_CHECK_MSG(false, "unknown record tag: " << tag);
    }
  }
  ST_CHECK_MSG(!have_sync, "dangling sync-kernel record");
  inputs.validate();
  return inputs;
}

ScalToolInputs load_inputs(const std::string& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.good(), "cannot open " << path);
  return read_inputs(is);
}

}  // namespace scaltool
