// Experiment runner: executes the Table 3 measurement matrix on the
// simulated machine and packages the counters into ScalToolInputs.
//
// This layer plays the role of the scripts a performance engineer would
// write around perfex on a real Origin: run the application at the base
// size for each processor count, run the uniprocessor data-set sweep, run
// the two kernels per machine size, and keep one "file" (RunRecord) per
// run.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/inputs.hpp"
#include "machine/dsm_machine.hpp"
#include "machine/machine_config.hpp"
#include "trace/workload.hpp"

namespace scaltool {

/// Strips a RunResult down to the event-counter record.
RunRecord make_record(const RunResult& result);

/// Extracts the validation side-band of a run.
ValidationRecord make_validation(const RunResult& result);

/// One independent simulator run of the measurement matrix — the unit of
/// work the campaign engine (src/engine) schedules, caches and joins.
struct RunSpec {
  std::string workload;          ///< registry name
  std::size_t dataset_bytes = 0;
  int num_procs = 0;
  bool want_validation = false;  ///< base runs carry the validation side-band
};

/// Everything one run produces that any part of the matrix may need.
struct JobOutcome {
  RunRecord record;
  ValidationRecord validation;  ///< meaningful iff the run produced one
};

/// The Table 3 measurement matrix as a deduplicated list of independent
/// jobs plus the join indices that rebuild ScalToolInputs from their
/// outcomes. Shared jobs appear once: the (s0, 1) base run doubles as the
/// first uniprocessor sweep point, exactly as a real campaign reuses the
/// same output file.
struct MatrixPlan {
  std::string app;
  std::size_t s0 = 0;
  std::size_t l2_bytes = 0;

  std::vector<RunSpec> jobs;  ///< deduplicated, deterministic order

  std::vector<std::size_t> base_jobs;  ///< per proc count, ascending n
  std::vector<std::size_t> uni_jobs;   ///< descending data-set size

  struct KernelJobs {
    int num_procs = 0;
    std::size_t sync_job = 0;
    std::size_t spin_job = 0;
  };
  std::vector<KernelJobs> kernel_jobs;  ///< one pair per n > 1
};

/// Joins per-job outcomes (parallel to `plan.jobs`) into validated inputs.
ScalToolInputs assemble_matrix(const MatrixPlan& plan,
                               std::span<const JobOutcome> outcomes);

/// How a partial assembly degraded, and what it did about it.
struct DegradedAssembly {
  std::size_t interpolated_runs = 0;   ///< uni sweep points rebuilt
  std::size_t dropped_points = 0;      ///< uni sweep points lost outright
  std::size_t substituted_kernels = 0; ///< kernel records borrowed across n
  std::vector<std::string> notes;      ///< one line per repair
  bool degraded() const {
    return interpolated_runs > 0 || dropped_points > 0 ||
           substituted_kernels > 0;
  }
};

/// Joins a *partial* outcome set: `available[j]` says whether outcomes[j]
/// is real (a quarantined or lost job is unavailable). Degradation rules:
///   - a missing base run (s0, n) is unrecoverable — the matrix exists to
///     measure exactly that point — so it throws CheckError naming the run;
///   - the smallest uniprocessor run anchors pi0 (Lubeck's method) and is
///     likewise unrecoverable;
///   - any other missing uniprocessor sweep point is interpolated between
///     its surviving neighbours (Sec. 2.4.1 interpolates this very curve);
///     a calibration point above s0 with no larger surviving neighbour is
///     dropped instead of extrapolated;
///   - a missing kernel record is substituted from the nearest machine
///     size that still has one.
/// Every repair is reported in `degraded` and in the result's notes.
ScalToolInputs assemble_matrix_partial(const MatrixPlan& plan,
                                       std::span<const JobOutcome> outcomes,
                                       const std::vector<bool>& available,
                                       DegradedAssembly* degraded = nullptr);

class ExperimentRunner {
 public:
  /// `base_config.num_procs` is ignored; each run sets its own count.
  explicit ExperimentRunner(const MachineConfig& base_config);

  const MachineConfig& base_config() const { return base_; }

  /// Machine configuration for an n-processor run.
  MachineConfig config_for(int num_procs) const;

  /// Runs `workload` once and returns the full result (counters + truth).
  RunResult run_full(Workload& workload, std::size_t dataset_bytes,
                     int num_procs) const;

  /// Registry-based convenience overload.
  RunResult run_full(const std::string& workload, std::size_t dataset_bytes,
                     int num_procs) const;

  RunRecord run(const std::string& workload, std::size_t dataset_bytes,
                int num_procs) const;

  /// Collects the complete Scal-Tool input matrix for an application:
  ///   - base runs at (s0, n) for every n in `proc_counts`;
  ///   - the uniprocessor sweep s0, s0/2, ... down to a size below half the
  ///     L1 (the pi0 anchor), adding extra L2-overflowing calibration sizes
  ///     when the sweep provides fewer than three t2/tm triplets;
  ///   - sync and spin kernels per processor count;
  ///   - the validation side-band from the same base runs.
  ScalToolInputs collect(const std::string& workload, std::size_t s0,
                         std::span<const int> proc_counts) const;

  /// Plans the same matrix as `collect` without running anything: the job
  /// list is fully determined by (s0, proc_counts, cache geometry). The
  /// campaign engine executes plans in parallel; `collect` is equivalent to
  /// executing the plan serially and assembling the outcomes.
  MatrixPlan plan_matrix(const std::string& workload, std::size_t s0,
                         std::span<const int> proc_counts) const;

  /// Same, for workloads that are not (or not only) in the registry —
  /// e.g. ablations over constructor parameters. `factory` must yield a
  /// fresh instance per call; `label` names the app in reports.
  ScalToolInputs collect(
      const std::function<std::unique_ptr<Workload>()>& factory,
      const std::string& label, std::size_t s0,
      std::span<const int> proc_counts) const;

  /// Segment-level matrix (Sec. 2.1: the plots "can be obtained ... for a
  /// segment of the application"): identical campaign, but every record is
  /// built from the named region's counters instead of the whole run.
  /// Regions end at phase boundaries, so they carry no barrier cost — the
  /// segment analysis isolates the region's caching behaviour. No
  /// validation side-band is produced (speedshop samples whole routines).
  ScalToolInputs collect_region(const std::string& workload,
                                const std::string& region, std::size_t s0,
                                std::span<const int> proc_counts) const;

  /// Default experiment parameters shared by figures and tests.
  WorkloadParams params_for(std::size_t dataset_bytes) const;

  /// Number of iterations per run. The paper's applications iterate many
  /// times (Hydro2d ran 100), amortizing compulsory misses; six keeps that
  /// property while whole measurement matrices still run in seconds.
  int iterations = 12;

  /// Progress callback (bench binaries print dots); may be empty.
  std::function<void(const std::string&)> on_run;

 private:
  MachineConfig base_;
};

/// The paper's processor-count series 1, 2, 4, ..., 32 (n = 6).
std::vector<int> default_proc_counts(int max_procs = 32);

}  // namespace scaltool
