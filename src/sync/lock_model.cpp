#include "sync/lock_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scaltool {

LockEpisode LockTimeline::acquire(double arrival, double critical_cycles) {
  ST_CHECK(arrival >= 0.0);
  ST_CHECK(critical_cycles >= 0.0);
  LockEpisode ep;
  const double overhead =
      config_.lock_fetchops * t_syn_ + config_.lock_instr * base_cpi_;
  const double wait = std::max(0.0, busy_until_ - arrival);
  ep.spin_cycles = wait;
  ep.spin_instr = wait / config_.spin_cpi;
  ep.sync_cycles = overhead;
  ep.sync_instr = config_.lock_instr;
  ep.stores_to_shared = config_.lock_fetchops;
  ep.grant_cycle = arrival + wait + overhead;
  ep.release_cycle = ep.grant_cycle + critical_cycles;
  busy_until_ = ep.release_cycle;
  return ep;
}

}  // namespace scaltool
