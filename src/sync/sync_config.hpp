// Synchronization cost parameters.
//
// The Origin 2000 implements synchronization with the fetchop facility for
// atomic operations (Sec. 2.4.2, [17]): "every acquire to a synchronization
// variable involves one full memory access". The fetchop latency t_syn is
// therefore a memory round trip to the (usually remote) home of the sync
// variable; it grows with the machine size exactly like tm(n). The barrier
// and spin parameters below define the synthetic barrier/spin code whose
// CPIs the model measures with its kernels (cpi_syn(n), cpi_imb).
#pragma once

namespace scaltool {

struct SyncConfig {
  /// Instructions executed per processor per barrier episode (increment
  /// code, flag check, bookkeeping) — the "extra instructions" of Table 2.
  double barrier_instr = 24.0;

  /// Fetchop-style accesses (full memory round trips) per processor per
  /// barrier: one counter increment, one release-flag re-fetch.
  double barrier_fetchops = 2.0;

  /// How long the counter's home memory is busy per fetchop, as a fraction
  /// of the requester-observed round trip. Serialized increments make the
  /// barrier cost grow roughly linearly with the processor count, as on
  /// real central-counter barriers.
  double fetchop_occupancy_factor = 1.2;

  /// While queued on the contended counter/lock the runtime retries a
  /// test&set-style store about once per round trip; every retry hits a
  /// line in Shared state and ticks the R10000 store-to-shared counter
  /// (the paper's nt_syn, [25]). This is what lets Eq. 10 price the whole
  /// contention, not just the two successful fetchops.
  double store_retry_interval_factor = 1.0;

  /// Instructions per iteration of the idle spin loop.
  double spin_loop_instr = 4.0;

  /// CPI of the spin loop — the cpi_imb the spin kernel measures. Idle
  /// loops issue fast out of the L1, so this sits below the compute CPI.
  double spin_cpi = 0.75;

  /// Instructions per lock acquire/release pair.
  double lock_instr = 12.0;

  /// Fetchops per lock acquire (ticket fetch + release store).
  double lock_fetchops = 2.0;
};

}  // namespace scaltool
