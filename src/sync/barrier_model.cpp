#include "sync/barrier_model.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace scaltool {

BarrierOutcome barrier_cost(std::span<const double> arrivals, double t_syn,
                            double base_cpi, const SyncConfig& config,
                            bool wait_is_sync) {
  ST_CHECK(!arrivals.empty());
  ST_CHECK(t_syn >= 0.0);
  ST_CHECK(base_cpi > 0.0);

  BarrierOutcome out;
  const std::size_t n = arrivals.size();
  out.per_proc.resize(n);

  if (n == 1) {
    out.exit_cycle = arrivals[0];
    return out;
  }

  // Each processor runs its barrier instructions on arrival, then issues
  // the counter fetchop. The counter's home serves one fetchop at a time
  // (occupancy = a fraction of the round trip); requests queue in arrival
  // order.
  const double instr_cycles = config.barrier_instr * base_cpi;
  const double occupancy = config.fetchop_occupancy_factor * t_syn;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return arrivals[a] < arrivals[b];
                   });

  std::vector<double> queue_wait(n, 0.0);
  std::vector<double> done(n, 0.0);
  double server_free = 0.0;
  double last_done = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = order[k];
    const double request = arrivals[p] + instr_cycles;
    const double start = std::max(request, server_free);
    queue_wait[p] = start - request;
    done[p] = start + t_syn;
    server_free = start + occupancy;
    last_done = std::max(last_done, done[p]);
  }
  // The last increment flips the release flag; every spinner re-fetches it
  // (second fetchop round trip).
  out.exit_cycle = last_done + t_syn;

  // Waiting on the contended counter/lock is a test&set retry loop: each
  // retry is one store instruction that takes a full round trip and ticks
  // the store-to-shared counter (nt_syn). This is the mechanism that makes
  // Eq. 10 — nt_syn·(pi0 + t_syn) — price barrier contention correctly.
  const double retry_interval =
      std::max(1.0, config.store_retry_interval_factor * t_syn);

  for (std::size_t p = 0; p < n; ++p) {
    BarrierProcCost& c = out.per_proc[p];
    const double queue_retries = queue_wait[p] / retry_interval;
    c.sync_instr = config.barrier_instr + queue_retries;
    c.sync_cycles = instr_cycles + queue_wait[p] + 2.0 * t_syn;
    c.fetchops = config.barrier_fetchops;
    c.stores_to_shared = config.barrier_fetchops + queue_retries;

    const double busy_until =
        arrivals[p] + instr_cycles + queue_wait[p] + 2.0 * t_syn;
    const double wait = out.exit_cycle - busy_until;
    ST_DCHECK(wait >= -1e-9 * (1.0 + out.exit_cycle));
    const double wait_cycles = std::max(0.0, wait);
    if (wait_is_sync) {
      // PCF: mp_barrier polls mp_lock_try for the release — more retry
      // stores, all inside the barrier routine (synchronization).
      const double wait_retries = wait_cycles / retry_interval;
      c.sync_cycles += wait_cycles;
      c.sync_instr += wait_retries;
      c.stores_to_shared += wait_retries;
    } else {
      // MP: wait_for_work spins on loads — load-imbalance spinning that
      // neither stores to shared lines nor samples in barrier routines.
      c.spin_cycles = wait_cycles;
      c.spin_instr = wait_cycles / config.spin_cpi;
    }
  }
  return out;
}

}  // namespace scaltool
