// Ticket-lock contention timeline.
//
// PCF codes (T3dheat's model of parallelism) use critical sections; the MP
// runtime's barrier implementation also takes a lock (mp_lock_try in the
// speedshop profiles of Sec. 4). The timeline serializes critical sections
// on one lock: an acquire at cycle `a` is granted at max(a, lock free time)
// plus a fetchop round trip, and the holder keeps the lock for the critical
// section length. Waiting time is spin (the processor polls the ticket).
#pragma once

#include "sync/sync_config.hpp"

namespace scaltool {

/// Result of one acquire/release episode.
struct LockEpisode {
  double grant_cycle = 0.0;    ///< when the critical section starts
  double release_cycle = 0.0;  ///< when the lock frees again
  double sync_cycles = 0.0;    ///< fetchop + lock instructions
  double sync_instr = 0.0;
  double spin_cycles = 0.0;    ///< contention wait
  double spin_instr = 0.0;
  double stores_to_shared = 0.0;
};

class LockTimeline {
 public:
  LockTimeline(double t_syn, double base_cpi, const SyncConfig& config)
      : t_syn_(t_syn), base_cpi_(base_cpi), config_(config) {}

  /// Acquires at `arrival`, holds for `critical_cycles`, releases.
  /// Successive calls may arrive out of order in simulated time; grants are
  /// first-come-first-served in *call* order against the busy-until clock,
  /// which matches the phase-sequential execution of the simulator.
  LockEpisode acquire(double arrival, double critical_cycles);

  /// Cycle until which the lock is held.
  double busy_until() const { return busy_until_; }

  void reset() { busy_until_ = 0.0; }

 private:
  double t_syn_;
  double base_cpi_;
  SyncConfig config_;
  double busy_until_ = 0.0;
};

}  // namespace scaltool
