// Central-counter barrier cost model with fetchop serialization.
//
// Given the cycle at which each processor reaches a barrier, this computes
// per-processor synchronization work and spinning, plus the common exit
// time. The barrier is the Origin's fetchop style (Sec. 2.4.2): each
// arriver atomically increments a counter at its home memory; increments
// *serialize* there (the home services one fetchop at a time), which makes
// the per-processor barrier cost grow with the processor count — the
// mechanism behind T3dheat's synchronization wall in Figure 6. The last
// arriver's increment triggers the release flag, which every spinner
// re-fetches (the second fetchop).
//
// Attribution follows the paper's speedshop taxonomy, which depends on the
// model of parallelism (Sec. 4.1 lists the routines):
//   - under PCF (explicit barrier directives) every in-barrier cycle —
//     instructions, fetchops, queue wait AND waiting for later arrivers —
//     samples inside mp_barrier/mp_lock_try, i.e. *synchronization*;
//   - under MP (DOACROSS) the wait for stragglers happens in
//     mp_slave_wait_for_work / mp_master_wait_for_slaves, i.e. *load
//     imbalance spinning*; only the barrier work proper is synchronization.
#pragma once

#include <span>
#include <vector>

#include "sync/sync_config.hpp"

namespace scaltool {

/// Per-processor cost breakdown of one barrier episode.
struct BarrierProcCost {
  double sync_cycles = 0.0;   ///< fetchops + queue wait + instructions
  double sync_instr = 0.0;
  double spin_cycles = 0.0;   ///< waiting for the last arriver
  double spin_instr = 0.0;
  double fetchops = 0.0;      ///< memory round trips on the counter line
  double stores_to_shared = 0.0;  ///< nt_syn contribution
};

struct BarrierOutcome {
  double exit_cycle = 0.0;               ///< all processors resume here
  std::vector<BarrierProcCost> per_proc; ///< indexed by processor
};

/// Computes the barrier outcome.
///   arrivals       — cycle at which each processor arrives
///   t_syn          — fetchop round-trip latency at this machine size
///   base_cpi       — CPI of the straight-line barrier instructions
///   wait_is_sync   — true for PCF codes (all in-barrier time is
///                    mp_barrier = sync), false for MP DOACROSS codes
///                    (straggler wait is wait-for-work = spin)
/// A single-processor "barrier" is free: with one participant the runtime
/// takes the fast path and the paper's model assumes multiprocessor
/// effects are exactly zero for 1-processor runs.
BarrierOutcome barrier_cost(std::span<const double> arrivals, double t_syn,
                            double base_cpi, const SyncConfig& config,
                            bool wait_is_sync = false);

}  // namespace scaltool
