// Full-map bit-vector directory implementing an Illinois/MESI invalidation
// protocol (the Origin 2000's scheme, Sec. 3: "directory-based scheme using
// bit vectors").
//
// The directory is the global arbiter of line ownership: processor caches
// ask it on every L2 miss and on every store to a Shared line (upgrade).
// It returns which coherence actions the machine must apply — invalidate
// sharers, intervene at a dirty owner — and classifies the miss as
// compulsory (first-ever caching of the line), which the model layer's
// compulsory/coherence/conflict decomposition is later validated against.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace scaltool {

/// Directory-side state of one memory line.
struct DirEntry {
  enum class State : unsigned char {
    kUncached,    ///< no cache holds the line
    kShared,      ///< one or more caches hold it clean
    kExclusive,   ///< exactly one cache holds it (E or M)
  };
  State state = State::kUncached;
  std::uint64_t sharers = 0;  ///< bit p set ⇔ processor p's cache holds it
  ProcId owner = -1;          ///< valid when state == kExclusive
};

/// Outcome of a directory read request (L2 read miss).
struct DirReadResult {
  bool compulsory = false;        ///< line never cached before anywhere
  bool intervention = false;      ///< dirty copy must be fetched from owner
  ProcId owner = -1;              ///< owner serving the intervention
  bool grant_exclusive = false;   ///< requester may install in E (no sharers)
};

/// Outcome of a directory write request (L2 write miss or S→M upgrade).
struct DirWriteResult {
  bool compulsory = false;
  bool intervention = false;      ///< dirty copy fetched from previous owner
  ProcId owner = -1;
  std::uint64_t invalidate = 0;   ///< caches (excluding requester) to kill
};

class Directory {
 public:
  /// `grant_exclusive_on_read` selects Illinois/MESI behaviour (a sole
  /// reader gets the line Exclusive, so its first store is silent) versus
  /// plain MSI (readers always get Shared; every first store pays an
  /// upgrade). The E state is the Illinois protocol's whole point [14];
  /// the MSI mode exists for the protocol ablation bench.
  explicit Directory(int num_procs, bool grant_exclusive_on_read = true);

  int num_procs() const { return num_procs_; }
  bool grants_exclusive() const { return grant_exclusive_on_read_; }

  /// Processor `p` read-misses on `line`. Updates the sharer set and
  /// returns the actions to apply. After this call the entry includes `p`.
  DirReadResult read_miss(Addr line, ProcId p);

  /// Processor `p` writes `line` (miss or upgrade). After this call `p`
  /// is the exclusive owner.
  DirWriteResult write_access(Addr line, ProcId p);

  /// Processor `p` silently dropped the line (clean eviction) or wrote it
  /// back (dirty eviction). Removes p from the sharer set.
  void evict(Addr line, ProcId p);

  /// Entry lookup for invariant checks; nullptr if the line was never
  /// referenced.
  const DirEntry* find(Addr line) const;

  /// True iff the line has ever been cached by anyone (compulsory-miss
  /// tracking survives evictions).
  bool ever_cached(Addr line) const;

  std::size_t num_entries() const { return entries_.size(); }

  /// Visits all entries (tests).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [line, e] : entries_) fn(line, e);
  }

 private:
  static std::uint64_t bit(ProcId p) { return std::uint64_t{1} << p; }

  int num_procs_;
  bool grant_exclusive_on_read_;
  std::unordered_map<Addr, DirEntry> entries_;
};

}  // namespace scaltool
