#include "coherence/directory.hpp"

#include <bit>

namespace scaltool {

Directory::Directory(int num_procs, bool grant_exclusive_on_read)
    : num_procs_(num_procs),
      grant_exclusive_on_read_(grant_exclusive_on_read) {
  ST_CHECK(num_procs >= 1);
  ST_CHECK_MSG(num_procs <= 64, "bit-vector directory supports up to 64 "
                                "processors, got " << num_procs);
}

DirReadResult Directory::read_miss(Addr line, ProcId p) {
  ST_DCHECK(p >= 0 && p < num_procs_);
  DirReadResult result;
  auto [it, inserted] = entries_.try_emplace(line);
  DirEntry& e = it->second;
  result.compulsory = inserted;
  ST_CHECK_MSG((e.sharers & bit(p)) == 0,
               "read miss from a processor the directory believes is a "
               "sharer (line 0x" << std::hex << line << ")");
  switch (e.state) {
    case DirEntry::State::kUncached:
      if (grant_exclusive_on_read_) {
        result.grant_exclusive = true;
        e.state = DirEntry::State::kExclusive;
        e.owner = p;
      } else {
        e.state = DirEntry::State::kShared;
      }
      break;
    case DirEntry::State::kShared:
      e.sharers |= bit(p);
      return result;  // sharers already includes p; nothing else changes
    case DirEntry::State::kExclusive:
      // Dirty (or exclusive-clean) copy at the owner: intervene, then both
      // caches keep the line Shared.
      result.intervention = true;
      result.owner = e.owner;
      e.state = DirEntry::State::kShared;
      e.owner = -1;
      break;
  }
  e.sharers |= bit(p);
  return result;
}

DirWriteResult Directory::write_access(Addr line, ProcId p) {
  ST_DCHECK(p >= 0 && p < num_procs_);
  DirWriteResult result;
  auto [it, inserted] = entries_.try_emplace(line);
  DirEntry& e = it->second;
  result.compulsory = inserted;
  switch (e.state) {
    case DirEntry::State::kUncached:
      break;
    case DirEntry::State::kShared:
      result.invalidate = e.sharers & ~bit(p);
      break;
    case DirEntry::State::kExclusive:
      if (e.owner != p) {
        result.intervention = true;
        result.owner = e.owner;
        result.invalidate = bit(e.owner);
      }
      break;
  }
  e.state = DirEntry::State::kExclusive;
  e.owner = p;
  e.sharers = bit(p);
  return result;
}

void Directory::evict(Addr line, ProcId p) {
  const auto it = entries_.find(line);
  ST_CHECK_MSG(it != entries_.end(), "eviction of a line the directory never "
                                     "saw");
  DirEntry& e = it->second;
  ST_CHECK_MSG((e.sharers & bit(p)) != 0,
               "eviction from a non-sharer (line 0x" << std::hex << line
                                                     << ")");
  e.sharers &= ~bit(p);
  if (e.sharers == 0) {
    e.state = DirEntry::State::kUncached;
    e.owner = -1;
  } else if (e.state == DirEntry::State::kExclusive) {
    // Owner left; remaining copies (none possible under MESI, but keep the
    // invariant airtight) degrade to Shared.
    e.state = DirEntry::State::kShared;
    e.owner = -1;
  } else if (std::popcount(e.sharers) >= 1) {
    e.state = DirEntry::State::kShared;
  }
}

const DirEntry* Directory::find(Addr line) const {
  const auto it = entries_.find(line);
  return it == entries_.end() ? nullptr : &it->second;
}

bool Directory::ever_cached(Addr line) const {
  return entries_.contains(line);
}

}  // namespace scaltool
