// Data-TLB model: fully associative, true-LRU, over page numbers.
//
// perfex exposes TLB misses (the paper's Sec. 5 names them among the
// low-level outputs programmers struggle to relate to bottlenecks); the
// machine can model them so that studies of the counter are possible. The
// Scal-Tool model itself neglects TLB misses, mirroring the paper's
// treatment of instruction misses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace scaltool {

class Tlb {
 public:
  /// `entries` ≥ 1; `page_bytes` must be a power of two.
  Tlb(int entries, std::size_t page_bytes);

  /// Translates the address: returns true on a hit. A miss installs the
  /// page, evicting the least recently used entry when full.
  bool access(Addr addr);

  /// True iff the page is currently mapped (pure probe).
  bool present(Addr addr) const;

  std::size_t occupancy() const { return slots_.size(); }
  int capacity() const { return entries_; }

  void clear();

 private:
  struct Slot {
    Addr page;
    std::uint64_t tick;
  };

  Addr page_of(Addr addr) const { return addr >> page_bits_; }

  int entries_;
  int page_bits_;
  std::uint64_t tick_ = 0;
  std::vector<Slot> slots_;  // linear scan: TLBs are tiny
};

}  // namespace scaltool
