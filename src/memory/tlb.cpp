#include "memory/tlb.hpp"

#include <algorithm>
#include <bit>

namespace scaltool {

Tlb::Tlb(int entries, std::size_t page_bytes) : entries_(entries) {
  ST_CHECK_MSG(entries >= 1, "TLB needs at least one entry");
  ST_CHECK_MSG(page_bytes > 0 && std::has_single_bit(page_bytes),
               "page size must be a power of two");
  page_bits_ = std::countr_zero(page_bytes);
  slots_.reserve(static_cast<std::size_t>(entries));
}

bool Tlb::access(Addr addr) {
  const Addr page = page_of(addr);
  for (Slot& slot : slots_) {
    if (slot.page == page) {
      slot.tick = ++tick_;
      return true;
    }
  }
  if (static_cast<int>(slots_.size()) < entries_) {
    slots_.push_back({page, ++tick_});
  } else {
    auto lru = std::min_element(
        slots_.begin(), slots_.end(),
        [](const Slot& a, const Slot& b) { return a.tick < b.tick; });
    *lru = {page, ++tick_};
  }
  return false;
}

bool Tlb::present(Addr addr) const {
  const Addr page = page_of(addr);
  return std::any_of(slots_.begin(), slots_.end(),
                     [&](const Slot& s) { return s.page == page; });
}

void Tlb::clear() {
  slots_.clear();
  tick_ = 0;
}

}  // namespace scaltool
