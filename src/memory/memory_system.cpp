#include "memory/memory_system.hpp"

#include <bit>

#include "common/check.hpp"

namespace scaltool {

MemorySystem::MemorySystem(int num_nodes, const MemoryConfig& config)
    : num_nodes_(num_nodes), config_(config) {
  ST_CHECK(num_nodes >= 1);
  ST_CHECK_MSG(config_.page_bytes > 0 &&
                   std::has_single_bit(config_.page_bytes),
               "page size must be a power of two");
  ST_CHECK_MSG(config_.alloc_skew_bytes % 8 == 0,
               "allocation skew must keep 8-byte element alignment");
}

Addr MemorySystem::allocate(std::size_t bytes, std::string label) {
  ST_CHECK_MSG(bytes > 0, "zero-byte allocation: " << label);
  const Addr base = next_;
  const auto page = static_cast<Addr>(config_.page_bytes);
  const Addr span = (static_cast<Addr>(bytes) + page - 1) / page * page;
  // The skew staggers the next array's set mapping (see MemoryConfig).
  next_ += span + static_cast<Addr>(config_.alloc_skew_bytes);
  allocations_.push_back({std::move(label), base, bytes});
  return base;
}

NodeId MemorySystem::home_of(Addr addr, NodeId toucher) {
  ST_DCHECK(toucher >= 0 && toucher < num_nodes_);
  const Addr page = page_of(addr);
  const auto it = page_home_.find(page);
  if (it != page_home_.end()) return it->second;
  NodeId home = 0;
  switch (config_.policy) {
    case PlacementPolicy::kFirstTouch:
      home = toucher;
      break;
    case PlacementPolicy::kRoundRobin:
      home = rr_next_;
      rr_next_ = (rr_next_ + 1) % num_nodes_;
      break;
    case PlacementPolicy::kFixedNode0:
      home = 0;
      break;
  }
  page_home_.emplace(page, home);
  return home;
}

NodeId MemorySystem::home_if_assigned(Addr addr) const {
  const auto it = page_home_.find(page_of(addr));
  return it == page_home_.end() ? -1 : it->second;
}

std::vector<std::size_t> MemorySystem::pages_per_node() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_nodes_), 0);
  for (const auto& [page, node] : page_home_)
    ++counts[static_cast<std::size_t>(node)];
  return counts;
}

}  // namespace scaltool
