// Simulated physical memory: allocation, page homing, and usage accounting.
//
// The Origin 2000 places pages on first touch by default (Sec. 3: "the
// default policy is ... first-touch to allocate pages in memory"); the home
// node of a page determines whether an L2 miss is a local or a remote
// memory access and therefore contributes to tm(n)'s growth with n. The
// high-water mark of allocation backs the ssusage emulation that Sec. 4
// uses to validate the L2Lim predictions.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace scaltool {

enum class PlacementPolicy {
  kFirstTouch,   ///< page homed at the node of the first toucher (default)
  kRoundRobin,   ///< pages striped across nodes in allocation order
  kFixedNode0,   ///< everything on node 0 (worst-case contention baseline)
};

struct MemoryConfig {
  std::size_t page_bytes = 1_KiB;  ///< scaled from the Origin's 16 KiB
  PlacementPolicy policy = PlacementPolicy::kFirstTouch;

  /// Extra bytes inserted between consecutive allocations so arrays of the
  /// same (power-of-two-ish) size do not land on identical cache sets.
  /// Physically-indexed caches get this effect for free from page
  /// colouring; without it the hit-rate-vs-size sweep develops aliasing
  /// artifacts no real machine shows. Must be a multiple of 8.
  std::size_t alloc_skew_bytes = 3264;  // 51 lines: spreads ~5 arrays across the set space
};

/// One named allocation (array) in the simulated address space.
struct Allocation {
  std::string label;
  Addr base = 0;
  std::size_t bytes = 0;
};

class MemorySystem {
 public:
  MemorySystem(int num_nodes, const MemoryConfig& config);

  const MemoryConfig& config() const { return config_; }
  int num_nodes() const { return num_nodes_; }

  /// Bump allocation, page-aligned. The label identifies the array in
  /// usage reports. Returns the base address.
  Addr allocate(std::size_t bytes, std::string label);

  /// Home node of the page containing `addr`; assigns it per policy on the
  /// first call (the "touch"). `toucher` is the node performing the access.
  NodeId home_of(Addr addr, NodeId toucher);

  /// Home node if already assigned, -1 otherwise (pure query).
  NodeId home_if_assigned(Addr addr) const;

  /// Total bytes ever allocated — the ssusage "maximum pages in memory"
  /// figure (nothing is freed during a run).
  std::size_t bytes_allocated() const { return next_ - kBase; }

  const std::vector<Allocation>& allocations() const { return allocations_; }

  /// Per-node count of homed pages (placement diagnostics).
  std::vector<std::size_t> pages_per_node() const;

 private:
  Addr page_of(Addr addr) const {
    return addr / static_cast<Addr>(config_.page_bytes);
  }

  static constexpr Addr kBase = 0x10000000;  ///< keep 0 unmapped

  int num_nodes_;
  MemoryConfig config_;
  Addr next_ = kBase;
  int rr_next_ = 0;
  std::vector<Allocation> allocations_;
  std::unordered_map<Addr, NodeId> page_home_;  // page index -> node
};

}  // namespace scaltool
