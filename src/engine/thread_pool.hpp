// Fixed-size worker pool with a bounded task queue.
//
// The campaign engine schedules its measurement jobs here: submit()
// enqueues a callable and returns a std::future carrying its result or
// exception; submission blocks while the queue is full (backpressure
// instead of unbounded memory); destruction drains the queue and joins
// every worker (graceful shutdown). ScALPEL's point that an evaluation
// harness must itself be lightweight is taken literally — this is a
// std-only pool, no scheduler dependencies.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "obs/telemetry.hpp"

namespace scaltool {

class ThreadPool {
 public:
  /// Starts `num_threads` (>= 1) workers. `max_queued` bounds the backlog
  /// of tasks not yet picked up; 0 means 2 x num_threads.
  explicit ThreadPool(int num_threads, std::size_t max_queued = 0);

  /// Graceful shutdown: every task already submitted still runs.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; blocks while the queue is full. The returned future
  /// yields fn's result — or rethrows whatever fn threw.
  template <typename Fn>
  std::future<std::invoke_result_t<std::decay_t<Fn>>> submit(Fn&& fn) {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // shared_ptr because std::function requires copyable callables.
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    // Capture the submitter's trace context so the task's spans carry the
    // same trace_id the originating request did (DESIGN.md §13). The
    // pool.task span lives here, inside the scope, for the same reason.
    enqueue([task, ctx = obs::current_trace()]() mutable {
      obs::TraceScope scope(std::move(ctx));
      obs::Span span("pool.task", "pool");
      (*task)();
    });
    return future;
  }

 private:
  void enqueue(std::function<void()> call);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable queue_changed_;
  std::deque<std::function<void()>> queue_;
  std::size_t max_queued_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace scaltool
