#include "engine/checkpoint.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/check.hpp"
#include "engine/journal.hpp"
#include "io/env.hpp"
#include "obs/metrics.hpp"
#include "runner/archive.hpp"

namespace scaltool {

namespace {

/// Parses the pid suffix of `name` relative to `prefix` ("<base>.tmp." or
/// "<base>.stage."); -1 when `name` is not such a temp file.
long temp_owner_pid(const std::string& name, const std::string& prefix) {
  if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) return -1;
  const std::string suffix = name.substr(prefix.size());
  if (suffix.find_first_not_of("0123456789") != std::string::npos) return -1;
  try {
    return std::stol(suffix);
  } catch (const std::exception&) {
    return -1;  // pid too long to be real
  }
}

bool process_is_dead(long pid) {
  if (pid <= 0) return false;
  // Signal 0 probes existence without touching the process. EPERM means
  // alive-but-not-ours; only ESRCH proves death.
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

}  // namespace

std::string journal_path_for(const std::string& archive_path) {
  return archive_path + ".journal";
}

std::string stage_path_for(const std::string& path) {
  return path + ".stage." + std::to_string(::getpid());
}

std::uint32_t commit_archive(const ScalToolInputs& inputs,
                             const std::string& path,
                             JournalWriter* journal) {
  std::ostringstream rendered;
  write_inputs(inputs, rendered);
  const std::string bytes = rendered.str();
  const std::uint32_t crc = crc32(bytes);

  const std::string stage = stage_path_for(path);
  io::Env& env = io::Env::instance();
  try {
    {
      const int fd = env.open(stage.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                              0644);
      if (fd < 0) {
        const int err = errno;
        std::ostringstream os;
        os << "cannot stage archive at " << stage << ": "
           << std::strerror(err);
        if (io::is_storage_errno(err)) throw io::StorageError(os.str(), err);
        ST_CHECK_MSG(false, os.str());
      }
      try {
        io::write_all(env, fd, bytes.data(), bytes.size(),
                      "staged archive " + stage);
        // The stage must be durable before the COMMIT marker claims it is.
        if (env.fsync(fd) != 0) {
          const int err = errno;
          throw io::StorageError("fsync of staged archive " + stage +
                                     " failed: " + std::strerror(err),
                                 err);
        }
      } catch (...) {
        env.close(fd);
        throw;
      }
      // close() is the last chance for a deferred-allocation filesystem
      // (NFS, btrfs under quota) to report that the staged bytes never
      // actually landed — a close error here means the archive the COMMIT
      // marker would describe does not exist.
      if (env.close(fd) != 0) {
        const int err = errno;
        throw io::StorageError("close of staged archive " + stage +
                                   " failed: " + std::strerror(err),
                               err);
      }
    }
    if (journal) journal->append_commit(path, bytes.size(), crc);
    ST_CHECK_MSG(env.rename(stage.c_str(), path.c_str()) == 0,
                 "cannot move " << stage << " into place at " << path);
    // rename() made the entry visible; syncing the parent directory makes
    // it durable — without this the classic temp+rename still loses the
    // file on power cut (the directory update sat in cache).
    io::fsync_parent_dir(env, path);
    // Read back what rename() actually published and hold it against the
    // staged bytes. A rename that tore (crashed copy across filesystems,
    // buggy overlay, injected torn-rename) is the one failure mode the
    // stage-side fsync/close checks cannot see, and it is exactly the
    // "silently corrupt archive" this module exists to rule out: without
    // the read-back the command would report success and delete the
    // journal, leaving the corruption as the only survivor.
    {
      const int fd = env.open(path.c_str(), O_RDONLY, 0);
      if (fd < 0) {
        const int err = errno;
        throw io::StorageError("published archive " + path +
                                   " vanished after rename: " +
                                   std::strerror(err),
                               err);
      }
      std::string readback;
      char buf[65536];
      for (;;) {
        const ssize_t n = env.read(fd, buf, sizeof buf);
        if (n < 0) {
          const int err = errno;
          env.close(fd);
          throw io::StorageError("read-back of published archive " + path +
                                     " failed: " + std::strerror(err),
                                 err);
        }
        if (n == 0) break;
        readback.append(buf, static_cast<std::size_t>(n));
      }
      env.close(fd);
      if (readback.size() != bytes.size() || crc32(readback) != crc)
        throw io::StorageError(
            "published archive " + path + " does not match the staged bytes (" +
                std::to_string(readback.size()) + " of " +
                std::to_string(bytes.size()) +
                " bytes on disk): the publish tore; the journal is kept, "
                "rerun with --resume",
            EIO);
    }
  } catch (...) {
    std::remove(stage.c_str());  // never leave staging debris behind
    throw;
  }
  return crc;
}

std::size_t reap_orphan_temps(const std::string& base_path) {
  namespace fs = std::filesystem;
  if (base_path.empty()) return 0;
  std::size_t reaped = 0;
  try {
    const fs::path base(base_path);
    const fs::path dir =
        base.has_parent_path() ? base.parent_path() : fs::path(".");
    const std::string tmp_prefix = base.filename().string() + ".tmp.";
    const std::string stage_prefix = base.filename().string() + ".stage.";
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      long pid = temp_owner_pid(name, tmp_prefix);
      if (pid < 0) pid = temp_owner_pid(name, stage_prefix);
      if (pid < 0 || !process_is_dead(pid)) continue;
      std::error_code rm_ec;
      if (fs::remove(entry.path(), rm_ec)) ++reaped;
    }
  } catch (const std::exception&) {
    return reaped;  // cleanup is best-effort by contract
  }
  if (reaped > 0)
    obs::MetricRegistry::instance().counter("recovery.tmp_reaped").add(reaped);
  return reaped;
}

}  // namespace scaltool
