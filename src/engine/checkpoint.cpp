#include "engine/checkpoint.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/check.hpp"
#include "engine/journal.hpp"
#include "obs/metrics.hpp"
#include "runner/archive.hpp"

namespace scaltool {

namespace {

/// Parses the pid suffix of `name` relative to `prefix` ("<base>.tmp." or
/// "<base>.stage."); -1 when `name` is not such a temp file.
long temp_owner_pid(const std::string& name, const std::string& prefix) {
  if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) return -1;
  const std::string suffix = name.substr(prefix.size());
  if (suffix.find_first_not_of("0123456789") != std::string::npos) return -1;
  try {
    return std::stol(suffix);
  } catch (const std::exception&) {
    return -1;  // pid too long to be real
  }
}

bool process_is_dead(long pid) {
  if (pid <= 0) return false;
  // Signal 0 probes existence without touching the process. EPERM means
  // alive-but-not-ours; only ESRCH proves death.
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

}  // namespace

std::string journal_path_for(const std::string& archive_path) {
  return archive_path + ".journal";
}

std::string stage_path_for(const std::string& path) {
  return path + ".stage." + std::to_string(::getpid());
}

std::uint32_t commit_archive(const ScalToolInputs& inputs,
                             const std::string& path,
                             JournalWriter* journal) {
  std::ostringstream rendered;
  write_inputs(inputs, rendered);
  const std::string bytes = rendered.str();
  const std::uint32_t crc = crc32(bytes);

  const std::string stage = stage_path_for(path);
  try {
    {
      const int fd = ::open(stage.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                            0644);
      ST_CHECK_MSG(fd >= 0, "cannot stage archive at " << stage << ": "
                                                       << std::strerror(errno));
      const char* p = bytes.data();
      std::size_t left = bytes.size();
      bool ok = true;
      while (ok && left > 0) {
        const ssize_t n = ::write(fd, p, left);
        ok = n > 0;
        if (ok) {
          p += n;
          left -= static_cast<std::size_t>(n);
        }
      }
      // The stage must be durable before the COMMIT marker claims it is.
      ok = ok && ::fsync(fd) == 0;
      ::close(fd);
      ST_CHECK_MSG(ok, "staging archive at " << stage << " failed: "
                                             << std::strerror(errno));
    }
    if (journal) journal->append_commit(path, bytes.size(), crc);
    ST_CHECK_MSG(std::rename(stage.c_str(), path.c_str()) == 0,
                 "cannot move " << stage << " into place at " << path);
  } catch (...) {
    std::remove(stage.c_str());  // never leave staging debris behind
    throw;
  }
  return crc;
}

std::size_t reap_orphan_temps(const std::string& base_path) {
  namespace fs = std::filesystem;
  if (base_path.empty()) return 0;
  std::size_t reaped = 0;
  try {
    const fs::path base(base_path);
    const fs::path dir =
        base.has_parent_path() ? base.parent_path() : fs::path(".");
    const std::string tmp_prefix = base.filename().string() + ".tmp.";
    const std::string stage_prefix = base.filename().string() + ".stage.";
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      long pid = temp_owner_pid(name, tmp_prefix);
      if (pid < 0) pid = temp_owner_pid(name, stage_prefix);
      if (pid < 0 || !process_is_dead(pid)) continue;
      std::error_code rm_ec;
      if (fs::remove(entry.path(), rm_ec)) ++reaped;
    }
  } catch (const std::exception&) {
    return reaped;  // cleanup is best-effort by contract
  }
  if (reaped > 0)
    obs::MetricRegistry::instance().counter("recovery.tmp_reaped").add(reaped);
  return reaped;
}

}  // namespace scaltool
