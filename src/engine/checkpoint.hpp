// Checkpointed archive finalization and crash-debris cleanup
// (DESIGN.md §11).
//
// Archive writes were already temp+rename, so a crash never published a
// torn file — but it could leave the *old* archive in place with no
// record that a newer one was fully staged, and it littered the directory
// with orphaned temp files. This module closes both gaps:
//
//   commit_archive() renders the archive into a staging file, fsyncs it,
//   appends the journal's COMMIT marker (size + CRC of the staged bytes),
//   and only then renames into place — the two-phase commit. A crash
//   before the marker resumes as if the archive was never written; a
//   crash after it can verify the rename simply by checking the bytes.
//
//   reap_orphan_temps() deletes `<base>.tmp.<pid>` / `<base>.stage.<pid>`
//   debris whose owning process is dead (the pid suffix every temp+rename
//   writer in this tree uses), counting the reaped files in the obs
//   registry under `recovery.tmp_reaped`.
#pragma once

#include <cstddef>
#include <string>

#include "core/inputs.hpp"

namespace scaltool {

class JournalWriter;

/// Canonical journal path for an archive destination.
std::string journal_path_for(const std::string& archive_path);

/// Staging path this process would use for `path` (pid-suffixed, so
/// concurrent writers never collide and dead writers are identifiable).
std::string stage_path_for(const std::string& path);

/// Two-phase archive publication: stage, fsync, journal COMMIT marker
/// (when `journal` is non-null), rename. Throws CheckError on I/O
/// failure, removing the staging file first. Returns the CRC-32 of the
/// published bytes.
std::uint32_t commit_archive(const ScalToolInputs& inputs,
                             const std::string& path,
                             JournalWriter* journal = nullptr);

/// Deletes sibling `<base>.tmp.<pid>` / `<base>.stage.<pid>` files whose
/// pid no longer names a live process. Files of live processes (including
/// this one) are left alone. Returns the number reaped; never throws —
/// cleanup must not break the campaign it runs ahead of.
std::size_t reap_orphan_temps(const std::string& base_path);

}  // namespace scaltool
