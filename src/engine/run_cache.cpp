#include "engine/run_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/crc32.hpp"
#include "engine/checkpoint.hpp"
#include "io/env.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runner/archive.hpp"

namespace scaltool {

namespace {

constexpr const char* kMagic = "scaltool-runcache";
// v2 added the per-entry CRC (7th ENTRY field, covering the ENTRY core
// plus its RUN/VALID lines): a flipped byte anywhere in an entry — even in
// a free-text field no parser could reject — flags exactly that entry
// corrupt instead of loading rotten data or discarding the whole file.
constexpr int kVersion = 2;

/// Lowercase 8-digit hex rendering of a CRC, matching the SUM footer.
std::string crc_hex8(std::uint32_t crc) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(8) << crc;
  return os.str();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void describe_cache_level(std::ostream& os, const CacheConfig& c) {
  os << c.size_bytes << '|' << c.associativity << '|' << c.line_bytes << '|'
     << static_cast<int>(c.replacement) << '|' << c.random_seed << '|';
}

}  // namespace

std::uint64_t job_key_hash(const RunSpec& spec, const MachineConfig& cfg,
                           int iterations) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << spec.workload << '|' << spec.dataset_bytes << '|' << spec.num_procs
     << '|' << iterations << '|';
  describe_cache_level(os, cfg.l1);
  describe_cache_level(os, cfg.l2);
  os << static_cast<int>(cfg.network.topology) << '|'
     << cfg.network.procs_per_node << '|' << cfg.network.nodes_per_router
     << '|' << cfg.network.hop_cycles << '|' << cfg.network.router_cycles
     << '|';
  os << cfg.memory.page_bytes << '|' << static_cast<int>(cfg.memory.policy)
     << '|' << cfg.memory.alloc_skew_bytes << '|';
  os << cfg.sync.barrier_instr << '|' << cfg.sync.barrier_fetchops << '|'
     << cfg.sync.fetchop_occupancy_factor << '|'
     << cfg.sync.store_retry_interval_factor << '|'
     << cfg.sync.spin_loop_instr << '|' << cfg.sync.spin_cpi << '|'
     << cfg.sync.lock_instr << '|' << cfg.sync.lock_fetchops << '|';
  os << cfg.tlb_entries << '|' << cfg.tlb_miss_cycles << '|'
     << cfg.exclusive_state << '|' << cfg.base_cpi << '|'
     << cfg.l2_hit_cycles << '|' << cfg.mem_cycles << '|'
     << cfg.intervention_extra << '|' << cfg.upgrade_cycles;
  return fnv1a(os.str());
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t key_hash) {
  // One splitmix64 step over the combination: well spread, stable across
  // execution orders, never colliding streams for distinct jobs.
  std::uint64_t z = base_seed ^ (key_hash + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

RunCache::RunCache(std::string path) : path_(std::move(path)) { load(); }

std::size_t RunCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t RunCache::loaded_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loaded_;
}

std::size_t RunCache::corrupt_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_;
}

std::uint64_t RunCache::find_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return find_hits_;
}

std::uint64_t RunCache::find_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return find_misses_;
}

std::uint64_t RunCache::inserts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inserts_;
}

std::uint64_t RunCache::unsaved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_.empty() ? 0 : unsaved_;
}

std::optional<JobOutcome> RunCache::find(std::uint64_t key,
                                         const RunSpec& spec) const {
  static obs::Counter& hits =
      obs::MetricRegistry::instance().counter("cache.hit");
  static obs::Counter& misses =
      obs::MetricRegistry::instance().counter("cache.miss");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses.add();
    ++find_misses_;
    return std::nullopt;
  }
  const Entry& e = it->second;
  if (e.spec.workload != spec.workload ||
      e.spec.dataset_bytes != spec.dataset_bytes ||
      e.spec.num_procs != spec.num_procs) {
    misses.add();
    ++find_misses_;
    return std::nullopt;  // hash collision or stale descriptor
  }
  if (spec.want_validation && !e.has_validation) {
    misses.add();
    ++find_misses_;
    return std::nullopt;
  }
  hits.add();
  ++find_hits_;
  return e.outcome;
}

void RunCache::insert(std::uint64_t key, const RunSpec& spec,
                      const JobOutcome& outcome, bool has_validation) {
  std::lock_guard<std::mutex> lock(mu_);
  ++inserts_;
  ++unsaved_;
  entries_[key] = Entry{spec, outcome, has_validation};
}

void RunCache::merge_from_disk(const std::string& path,
                               std::map<std::uint64_t, Entry>& into,
                               std::size_t* loaded, std::size_t* corrupt) {
  std::ifstream is(path);
  if (!is.good()) return;  // no cache yet: start cold

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  if (lines.empty()) return;

  {
    const auto header = split_record(lines.front());
    if (header.size() != 2 || header[0] != kMagic ||
        header[1] != std::to_string(kVersion)) {
      if (corrupt) *corrupt += 1;  // unknown file: ignore wholesale
      return;
    }
  }

  std::size_t i = 1;
  while (i < lines.size()) {
    const auto fields = split_record(lines[i]);
    if (fields.empty() || fields[0] != "ENTRY") {
      ++i;  // stray debris between entries; the next ENTRY resynchronizes
      continue;
    }
    try {
      ST_CHECK_MSG(fields.size() == 7, "ENTRY with " << fields.size()
                                                     << " fields");
      Entry e;
      // Strict numeric parses: stoull/stoi accept any valid prefix, which
      // would let a flipped byte mid-field truncate the value silently
      // instead of flagging the entry corrupt.
      std::size_t pos = 0;
      const std::uint64_t key = std::stoull(fields[1], &pos, 16);
      ST_CHECK_MSG(pos == fields[1].size(), "ENTRY key is not hex");
      e.spec.workload = fields[2];
      e.spec.dataset_bytes =
          static_cast<std::size_t>(std::stoull(fields[3], &pos));
      ST_CHECK_MSG(pos == fields[3].size(), "ENTRY size is not numeric");
      e.spec.num_procs = std::stoi(fields[4], &pos);
      ST_CHECK_MSG(pos == fields[4].size(), "ENTRY procs is not numeric");
      e.has_validation = fields[5] == "1";

      ST_CHECK_MSG(i + 1 < lines.size(), "ENTRY without a RUN record");
      const auto run_fields = split_record(lines[i + 1]);
      ST_CHECK_MSG(!run_fields.empty() && run_fields[0] == "RUN",
                   "ENTRY not followed by a RUN record");
      const std::size_t consumed = e.has_validation ? 3 : 2;
      if (e.has_validation)
        ST_CHECK_MSG(i + 2 < lines.size(), "ENTRY without its VALID record");
      // Verify the per-entry CRC before trusting any payload field: it
      // covers the ENTRY core (fields 0–5) and the RUN/VALID lines, so a
      // garble anywhere in the group rejects the whole group.
      {
        const std::uint32_t stored = static_cast<std::uint32_t>(
            std::stoul(fields[6], &pos, 16));
        ST_CHECK_MSG(pos == fields[6].size(), "ENTRY crc is not hex");
        std::string group;
        for (std::size_t f = 0; f < 6; ++f) {
          if (f) group += '|';
          group += fields[f];
        }
        group += '\n';
        group += lines[i + 1];
        group += '\n';
        if (e.has_validation) {
          group += lines[i + 2];
          group += '\n';
        }
        ST_CHECK_MSG(crc32(group) == stored, "ENTRY crc mismatch");
      }
      e.outcome.record = parse_run_record(run_fields);
      if (e.has_validation) {
        const auto valid_fields = split_record(lines[i + 2]);
        ST_CHECK_MSG(!valid_fields.empty() && valid_fields[0] == "VALID",
                     "ENTRY not followed by its VALID record");
        e.outcome.validation = parse_validation_record(valid_fields);
      }
      into[key] = std::move(e);
      if (loaded) *loaded += 1;
      i += consumed;
    } catch (const std::exception&) {
      if (corrupt) *corrupt += 1;  // skip; the campaign re-runs the job
      ++i;
    }
  }
}

void RunCache::load() {
  if (path_.empty()) return;
  obs::Span span("cache.open", "cache");
  // A writer that died mid-save left a pid-suffixed temp next to the
  // cache; sweep the debris of dead processes before reading.
  reap_orphan_temps(path_);
  merge_from_disk(path_, entries_, &loaded_, &corrupt_);
  span.arg("loaded", loaded_).arg("corrupt", corrupt_);
  obs::MetricRegistry& reg = obs::MetricRegistry::instance();
  reg.counter("cache.entries_loaded").add(loaded_);
  // Every corrupt entry is a recovery event: the campaign re-runs the job
  // instead of aborting on the rotten record.
  reg.counter("cache.recovery_events").add(corrupt_);
}

namespace {

/// Advisory exclusive lock on a side file, held for a save's read-merge-
/// rename span. Routed through the storage environment so the emfile
/// drill can exhaust it; every error path closes the fd it opened (the fd
/// leak that used to hide here is exactly what that drill catches).
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    io::Env& env = io::Env::instance();
    fd_ = env.open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      reason_ = std::string("lock file unavailable: ") +
                std::strerror(errno);
      return;
    }
    int rc;
    do {
      rc = env.flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      reason_ = std::string("flock failed: ") + std::strerror(errno);
      env.close(fd_);
      fd_ = -1;
    }
  }
  ~FileLock() {
    if (fd_ >= 0) {
      io::Env& env = io::Env::instance();
      env.flock(fd_, LOCK_UN);
      env.close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool locked() const { return fd_ >= 0; }
  const std::string& reason() const { return reason_; }

 private:
  int fd_ = -1;
  std::string reason_;
};

}  // namespace

void RunCache::save() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return;
  obs::Span span("cache.save", "cache");
  // Writer exclusion across processes: the fleet's worker shards share
  // one cache file, and two draining shards save at the same moment.
  // Under the lock, union the current on-disk entries with ours (memory
  // wins per key — our copy is at least as fresh for keys we hold), so
  // the last writer extends the first one's work instead of erasing it.
  FileLock file_lock(path_ + ".lock");
  if (!file_lock.locked()) {
    // Without the lock a read-merge-rename could erase a concurrent
    // writer's entries, so degrade to memory-only: keep serving from RAM,
    // leave the file alone, and say so — the save provenance note and the
    // counter make the degradation observable instead of silent.
    save_note_ = "cache save degraded to memory-only (" +
                 file_lock.reason() + ")";
    span.arg("skipped", 1);
    obs::MetricRegistry::instance()
        .counter("cache.save_skipped_lock")
        .add();
    return;
  }
  std::map<std::uint64_t, Entry> merged;
  merge_from_disk(path_, merged, nullptr, nullptr);
  std::size_t adopted = 0;
  for (const auto& [key, e] : merged)
    if (entries_.find(key) == entries_.end()) ++adopted;
  for (const auto& [key, e] : entries_) merged[key] = e;
  span.arg("entries", merged.size()).arg("adopted", adopted);
  // Render in memory, then write through the storage environment. The
  // temp name is unique per process so concurrent campaigns sharing a
  // cache file never interleave writes into the same temp; whichever
  // rename() lands last wins atomically, and a crash mid-write leaves the
  // published file untouched. The trailing SUM line checksums the whole
  // body: the tolerant loader skips it (any stray non-ENTRY line is
  // debris to it), but `scaltool fsck` verifies it end to end.
  std::ostringstream body;
  body << kMagic << '|' << kVersion << '\n';
  for (const auto& [key, e] : merged) {
    std::ostringstream core;
    core << "ENTRY|" << std::hex << key << std::dec << '|'
         << e.spec.workload << '|' << e.spec.dataset_bytes << '|'
         << e.spec.num_procs << '|' << (e.has_validation ? 1 : 0);
    std::ostringstream payload;
    write_run_record(payload, "RUN", e.outcome.record);
    if (e.has_validation)
      write_validation_record(payload, e.outcome.validation);
    // The entry CRC covers core + payload; the loader re-derives it the
    // same way, so any flipped byte in the group rejects the group.
    body << core.str() << '|'
         << crc_hex8(crc32(core.str() + '\n' + payload.str())) << '\n'
         << payload.str();
  }
  const std::string bytes_body = body.str();
  std::ostringstream footer;
  footer << "SUM|" << std::hex << std::setfill('0') << std::setw(8)
         << crc32(bytes_body) << '\n';
  const std::string bytes = bytes_body + footer.str();

  const std::string tmp = path_ + ".tmp." + std::to_string(::getpid());
  io::Env& env = io::Env::instance();
  try {
    const int fd = env.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      throw io::StorageError(
          "cannot open " + tmp + " for writing: " + std::strerror(errno),
          errno);
    }
    try {
      io::write_all(env, fd, bytes.data(), bytes.size(), tmp);
    } catch (...) {
      env.close(fd);
      throw;
    }
    if (env.close(fd) != 0) {
      throw io::StorageError(
          "close of " + tmp + " failed: " + std::strerror(errno), errno);
    }
    if (env.rename(tmp.c_str(), path_.c_str()) != 0) {
      throw io::StorageError("cannot move " + tmp + " into place at " +
                                 path_ + ": " + std::strerror(errno),
                             errno);
    }
    unsaved_ = 0;  // the file now reflects every insert
    save_note_.clear();
  } catch (const io::StorageError& e) {
    // The cache is an optimization: a campaign whose results are safely
    // journaled must not fail because the *memo file* could not be
    // rewritten on a full disk. Keep the entries in memory (unsaved_
    // still counts them), note the degradation, and move on.
    std::remove(tmp.c_str());  // never leave temp debris behind
    save_note_ = std::string("cache save failed, entries kept in memory "
                             "only (") +
                 e.what() + ")";
    obs::MetricRegistry::instance().counter("cache.save_failed").add();
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace scaltool
