// The campaign engine: parallel, memoized execution of measurement
// matrices.
//
// A Scal-Tool campaign (Table 3) is a matrix of independent simulator
// runs; ExperimentRunner::collect executes it strictly serially. The
// engine instead asks the runner for a MatrixPlan — the deduplicated job
// DAG, where e.g. the (s0, 1) point shared by the base series and the
// uniprocessor sweep is a single job — executes the jobs on a fixed-size
// worker pool, memoizes every outcome in a persistent RunCache, and joins
// the results with assemble_matrix.
//
// Determinism: each job derives its RNG seeds from its content key
// (derive_seed), so counters are bit-identical whatever the worker count
// or completion order; tests assert --jobs=8 == serial.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "engine/engine_stats.hpp"
#include "engine/run_cache.hpp"
#include "runner/runner.hpp"

namespace scaltool {

struct CampaignOptions {
  /// Worker threads; 1 keeps today's serial behaviour (the CLI default).
  int jobs = 1;
  /// Persistent run-cache file; empty means memoize in memory only.
  std::string cache_path;
  /// Progress callback (one line per simulator run); invoked serialized.
  std::function<void(const std::string&)> on_run;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(const ExperimentRunner& runner,
                          CampaignOptions options = {});

  /// Collects the Table 3 matrix exactly like ExperimentRunner::collect,
  /// but scheduled on the pool and served from the cache where possible.
  ScalToolInputs collect(const std::string& workload, std::size_t s0,
                         std::span<const int> proc_counts);

  /// Executes an explicit plan; outcomes are parallel to plan.jobs. If any
  /// job failed, finishes the rest, then rethrows the first error.
  std::vector<JobOutcome> execute(const MatrixPlan& plan);

  const ExperimentRunner& runner() const { return runner_; }
  RunCache& cache() { return cache_; }

  /// Metrics of the most recent collect()/execute() call.
  const EngineStats& stats() const { return stats_; }

 private:
  JobOutcome execute_job(const RunSpec& spec, std::uint64_t key) const;

  ExperimentRunner runner_;  // by value: the engine outlives CLI temporaries
  CampaignOptions options_;
  RunCache cache_;
  EngineStats stats_;
};

/// One-call parallel counterpart of ExperimentRunner::collect.
ScalToolInputs run_matrix_parallel(const ExperimentRunner& runner,
                                   const std::string& workload,
                                   std::size_t s0,
                                   std::span<const int> proc_counts,
                                   const CampaignOptions& options = {},
                                   EngineStats* stats_out = nullptr);

}  // namespace scaltool
