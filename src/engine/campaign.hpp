// The campaign engine: parallel, memoized, fault-tolerant execution of
// measurement matrices.
//
// A Scal-Tool campaign (Table 3) is a matrix of independent simulator
// runs; ExperimentRunner::collect executes it strictly serially. The
// engine instead asks the runner for a MatrixPlan — the deduplicated job
// DAG, where e.g. the (s0, 1) point shared by the base series and the
// uniprocessor sweep is a single job — executes the jobs on a fixed-size
// worker pool, memoizes every outcome in a persistent RunCache, and joins
// the results with assemble_matrix.
//
// Collection is where real campaigns break (dead perfex runs, dropped
// counter groups, rotten archive copies), so the engine carries a failure
// model: per-job bounded retry with deterministic exponential backoff, a
// keep-going mode that quarantines permanently failing jobs and completes
// the rest of the matrix (joined by assemble_matrix_partial's graceful
// degradation), and a seeded FaultInjector to make all of it testable.
//
// Determinism: each job derives its RNG seeds from its content key
// (derive_seed), and every fault decision is pure in (plan seed, key,
// attempt), so counters are bit-identical whatever the worker count or
// completion order; tests assert --jobs=8 == serial even under faults.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/engine_stats.hpp"
#include "engine/fault_injector.hpp"
#include "engine/journal.hpp"
#include "engine/run_cache.hpp"
#include "runner/runner.hpp"

namespace scaltool {

struct CampaignOptions {
  /// Worker threads; 1 keeps today's serial behaviour (the CLI default).
  int jobs = 1;
  /// Persistent run-cache file; empty means memoize in memory only.
  std::string cache_path;
  /// Extra attempts after a job's first failed one (0 = fail fast).
  int retries = 0;
  /// Base of the deterministic exponential backoff between attempts: the
  /// k-th retry of a job waits backoff_ms << (k−1) milliseconds.
  int backoff_ms = 0;
  /// Quarantine jobs that fail every attempt and finish the rest of the
  /// matrix instead of aborting; collect() then assembles a degraded (but
  /// honest) input set via assemble_matrix_partial.
  bool keep_going = false;
  /// Seeded fault injection; an all-zero plan (the default) is off and
  /// leaves the fault-free path untouched.
  FaultPlan faults;
  /// Progress callback (one line per simulator run); invoked serialized.
  std::function<void(const std::string&)> on_run;
  /// Memoize into this externally owned cache instead of constructing one.
  /// The analysis service shares a single RunCache across concurrent
  /// campaigns so identical sweep points are simulated once; RunCache is
  /// internally synchronized. Mutually exclusive with `cache_path`.
  std::shared_ptr<RunCache> shared_cache;
  /// Write-ahead journal (DESIGN.md §11): collect() records the matrix
  /// signature up front and appends every completed run, so a killed
  /// campaign loses nothing but its in-flight jobs. Empty = no journal.
  std::string journal_path;
  /// Replay an existing journal at `journal_path` before running: runs it
  /// carries are seeded into the outcome set (stats().jobs_replayed) and
  /// never re-simulated. A journal for a different matrix is a CheckError.
  /// With no journal file present the campaign simply starts fresh.
  bool resume = false;
  /// Per-run watchdog: an attempt that exceeds this budget is cancelled
  /// (cooperatively — the stall injection and cancellation polls share
  /// the same slicing) and treated as a failed attempt, so it retries or
  /// quarantines like any other fault. 0 = no watchdog.
  int run_timeout_ms = 0;
  /// Cooperative cancellation: polled before each job starts. Once it
  /// returns true no further job begins and execute() throws
  /// CampaignCancelled after in-flight jobs finish. Backoff sleeps and a
  /// job already inside the simulator are not interrupted — cancellation
  /// latency is one job, not one cycle. The service maps a request
  /// deadline onto this hook.
  std::function<bool()> cancelled;
};

/// Thrown (out of execute/collect) when CampaignOptions::cancelled fired.
/// Deliberately not a CheckError: cancellation is an external decision,
/// not a broken contract, and callers dispatch on the distinction.
class CampaignCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One job the engine gave up on (after all retries).
struct QuarantinedJob {
  std::size_t job = 0;  ///< index into MatrixPlan::jobs
  RunSpec spec;
  int attempts = 0;
  std::string error;  ///< the final attempt's failure
};

class CampaignEngine {
 public:
  explicit CampaignEngine(const ExperimentRunner& runner,
                          CampaignOptions options = {});

  /// Collects the Table 3 matrix exactly like ExperimentRunner::collect,
  /// but scheduled on the pool and served from the cache where possible.
  /// Under keep-going, quarantined jobs degrade the assembly (see
  /// assemble_matrix_partial); the result's notes record every repair.
  ScalToolInputs collect(const std::string& workload, std::size_t s0,
                         std::span<const int> proc_counts);

  /// Executes an explicit plan; outcomes are parallel to plan.jobs. A
  /// failed job is retried per the options; if it still fails, keep-going
  /// quarantines it (its outcome slot stays default-constructed, see
  /// quarantined()), otherwise the engine finishes the remaining jobs and
  /// rethrows the first error.
  ///
  /// `selected` (parallel to plan.jobs, or null = everything) is the
  /// adaptive planner's job mask: an unselected job is never simulated,
  /// never touches the cache or the journal, and is counted as
  /// stats().planned_skipped — the stats identity becomes
  /// total = run + cached + replayed + quarantined + planned_skipped.
  /// Successive execute() calls with the same plan keep appending to the
  /// same journal (the planner runs one batch per call), so a resumed
  /// adaptive campaign replays every batch it already paid for.
  std::vector<JobOutcome> execute(const MatrixPlan& plan,
                                  const std::vector<bool>* selected = nullptr);

  const ExperimentRunner& runner() const { return runner_; }
  RunCache& cache() { return *cache_; }

  /// Metrics of the most recent collect()/execute() call.
  const EngineStats& stats() const { return stats_; }

  /// Jobs the most recent execute() quarantined (empty without keep-going).
  const std::vector<QuarantinedJob>& quarantined() const {
    return quarantined_;
  }

  /// Human-readable event journal of the most recent execute(): one line
  /// per retry, quarantine and injected counter corruption, so a report
  /// can list exactly what degraded.
  const std::vector<std::string>& events() const { return events_; }

 private:
  JobOutcome execute_job(const RunSpec& spec, std::uint64_t key) const;
  /// Opens/replays the journal for a plan (no-op without a journal path).
  void prepare_journal(const MatrixPlan& plan);

  ExperimentRunner runner_;  // by value: the engine outlives CLI temporaries
  CampaignOptions options_;
  std::shared_ptr<RunCache> cache_;  // options_.shared_cache or owned
  std::unique_ptr<FaultInjector> injector_;  // null when faults are off
  std::unique_ptr<JournalWriter> journal_;   // null when journaling is off
  std::uint64_t journal_signature_ = 0;  ///< matrix the open journal is for
  std::map<std::size_t, ReplayedRun> replay_;  ///< journal-seeded outcomes
  EngineStats stats_;
  std::vector<QuarantinedJob> quarantined_;
  std::vector<std::string> events_;
};

/// One-call parallel counterpart of ExperimentRunner::collect.
ScalToolInputs run_matrix_parallel(const ExperimentRunner& runner,
                                   const std::string& workload,
                                   std::size_t s0,
                                   std::span<const int> proc_counts,
                                   const CampaignOptions& options = {},
                                   EngineStats* stats_out = nullptr);

}  // namespace scaltool
