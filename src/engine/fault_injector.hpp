// Deterministic, seeded fault injection for measurement campaigns.
//
// Scal-Tool's inputs come from fragile real-world collection: perfex runs
// die, multiplexed counters drop events, archives get truncated in flight
// (PAPER.md Sec. 2.2/3.1). This module makes those failures reproducible
// so the rest of the stack can be *tested* against them: a FaultPlan says
// how often jobs fail (transiently or permanently), stall, or return
// perturbed/dropped counter values, and how often saved run-cache entries
// rot on disk.
//
// Every decision is a pure function of (plan seed, job content key,
// attempt, fault kind) — no global RNG, no ordering dependence — so a
// faulty campaign is bit-reproducible whatever the worker count, and a
// test can predict exactly which jobs will fail by querying the injector
// with the same keys the engine uses.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "io/env.hpp"
#include "runner/runner.hpp"

namespace scaltool {

/// Declarative fault specification, parseable from the CLI
/// (`--faults=seed=42,transient=0.2,perturb=0.05`). All rates are
/// probabilities in [0, 1]; an all-zero plan injects nothing and leaves
/// the engine on its exact fault-free path.
struct FaultPlan {
  std::uint64_t seed = 1;

  double transient_rate = 0.0;  ///< per attempt: fails, may pass on retry
  double permanent_rate = 0.0;  ///< per job: every attempt fails
  double stall_rate = 0.0;      ///< per attempt: sleeps before running
  int stall_ms = 5;             ///< stall duration when injected

  double perturb_rate = 0.0;       ///< per job: noisy counter readings
  double perturb_magnitude = 0.02; ///< relative perturbation bound
  double drop_rate = 0.0;          ///< per job: a counter group is lost

  double cache_corrupt_rate = 0.0; ///< per saved run-cache entry

  /// Process death: SIGKILL this process at the Nth completed simulator
  /// run (run_boundary() counts them), after the run was journaled — the
  /// seeded, reproducible crash point the recovery harness resumes from.
  /// 0 = never crash.
  int crash_at_run = 0;

  /// Optional targeting, for reproducing a specific dead run: faults apply
  /// only to jobs whose workload name contains `target` (empty = all) and
  /// whose processor count / data-set size match (0 = any).
  std::string target;
  int target_procs = 0;
  std::size_t target_bytes = 0;

  /// Storage-fault schedule for the io::Env layer (DESIGN.md §15): each
  /// knob is a 1-based syscall index, not a rate — `enospc=3` means the
  /// third durability write and every later one fails with ENOSPC. The
  /// command cores install a FaultyEnv with this plan for the command's
  /// lifetime when any knob is set.
  io::IoFaultPlan io;

  /// True when any fault kind has a nonzero rate.
  bool enabled() const;

  /// Parses "key=value,key=value" with keys seed, transient, permanent,
  /// stall, stall-ms, perturb, perturb-mag, drop, cache-corrupt, crash,
  /// target, target-procs, target-bytes, plus the storage kinds enospc,
  /// eio, short-write, torn-rename, fsync-drop, emfile (syscall indices).
  /// Throws CheckError on unknown keys or out-of-range rates.
  static FaultPlan parse(const std::string& spec);

  /// Compact human-readable rendering of the nonzero knobs.
  std::string describe() const;
};

/// What the injector decided for one kind of fault (tallied per campaign).
struct FaultCounts {
  std::size_t transient = 0;
  std::size_t permanent = 0;
  std::size_t stalls = 0;
  std::size_t perturbed = 0;
  std::size_t dropped = 0;

  std::size_t total() const {
    return transient + permanent + stalls + perturbed + dropped;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Target filter: does the plan apply to this job at all?
  bool applies_to(const RunSpec& spec) const;

  /// Per-job decision: this job fails on every attempt. The decision
  /// ignores `attempt`; it only scopes the tally, which counts the fault
  /// once per job (on attempt 0) rather than once per retry.
  bool permanent_fault(std::uint64_t key, int attempt = 0) const;

  /// Per-attempt decision (attempt is 0-based): this attempt fails but a
  /// retry may succeed. Tallies the injected fault.
  bool transient_fault(std::uint64_t key, int attempt) const;

  /// Per-attempt stall in milliseconds (0 = none). Tallies when nonzero.
  int stall_ms(std::uint64_t key, int attempt) const;

  /// Applies counter perturbation and/or drop to a completed outcome, in
  /// place. Returns a description of what was injected ("" = untouched).
  /// Deterministic per key: re-running the job reproduces the same noisy
  /// reading, like re-reading the same flaky archive.
  std::string perturb(std::uint64_t key, JobOutcome& outcome) const;

  /// Marks one completed (not cached, not replayed) simulator run. When
  /// the plan says crash_at_run == N, the Nth call SIGKILLs the process —
  /// no atexit, no flush, the genuine article the journal must survive.
  void run_boundary() const;

  /// Deterministically corrupts ENTRY records of a saved run-cache file
  /// (flips bytes inside the per-entry payload), simulating disk rot or a
  /// bad copy between machines. Returns the number of entries corrupted.
  std::size_t corrupt_cache_file(const std::string& path) const;

  /// Faults injected so far (monotone over the injector's lifetime).
  FaultCounts counts() const;

 private:
  /// Uniform [0,1) draw, pure in (seed, key, attempt, kind tag).
  double draw(std::uint64_t key, int attempt, std::uint64_t tag) const;

  FaultPlan plan_;
  mutable std::atomic<std::size_t> transient_{0};
  mutable std::atomic<std::size_t> permanent_{0};
  mutable std::atomic<std::size_t> stalls_{0};
  mutable std::atomic<std::size_t> perturbed_{0};
  mutable std::atomic<std::size_t> dropped_{0};
  mutable std::atomic<int> run_boundaries_{0};
};

}  // namespace scaltool
