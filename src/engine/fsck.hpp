// Integrity checker and self-repair for scaltool's on-disk artifacts
// (DESIGN.md §15).
//
// `scaltool fsck <path>` answers the question every storage fault leaves
// behind: *can the bytes on disk still be trusted?* It recognizes the
// three durable artifact kinds by their header line — counter archives
// (`scaltool-inputs`), campaign journals (`scaltool-journal`) and run
// caches (`scaltool-runcache`) — verifies their per-record CRCs and
// whole-file SUM footers end to end, reconciles a journal's COMMIT marker
// against the archive it describes, and (with repair enabled) performs
// the repairs that are safe to automate:
//
//   journal   torn tail        → truncate to the longest valid prefix
//   cache     corrupt entries  → rewrite keeping only the valid ones
//   cache     missing footer   → rewrite with a fresh SUM line
//   archive   missing footer   → rewrite the (verified) body with one
//   archive   commit mismatch  → quarantine to `<path>.corrupt` so the
//                                next `collect --resume` republishes
//
// What fsck never does is guess: an archive whose footer mismatches its
// bytes is evidence of damage, and the repair is to get it out of the
// way of the journal-backed recovery path, not to patch the checksum.
// Findings are machine-readable (stable `code` slugs, JSON rendering) so
// CI chaos jobs can assert on them.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace scaltool {

/// One integrity finding. `code` is a stable slug ("journal.torn-tail",
/// "archive.footer-mismatch", ...), `repaired` says whether this run
/// fixed it.
struct FsckFinding {
  std::string code;
  std::string detail;
  bool repaired = false;
};

struct FsckReport {
  std::string path;
  std::string kind;  ///< "archive" | "journal" | "cache" | "unknown"
  bool fatal = false;  ///< unreadable, unrecognizable, or damage fsck
                       ///  cannot make safe (even with repair enabled)
  std::vector<FsckFinding> findings;

  /// No findings and nothing fatal: the artifact verifies end to end.
  bool clean() const { return findings.empty() && !fatal; }
  /// Findings present but every one repaired (and nothing fatal).
  bool fully_repaired() const;

  /// One-object JSON rendering (stable keys: path, kind, fatal, clean,
  /// findings[{code, detail, repaired}]).
  std::string to_json() const;
  /// Human-readable rendering, one line per finding.
  void print(std::ostream& os) const;
};

/// Checks the artifact at `path`, auto-detecting its kind from the header
/// line. With `repair` true, performs the safe repairs listed in the file
/// comment and marks the findings repaired. Never throws on damaged
/// content — damage is the subject matter, reported in the result; only
/// programming errors escape.
FsckReport fsck_file(const std::string& path, bool repair);

}  // namespace scaltool
