#include "engine/engine_stats.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/metrics.hpp"

namespace scaltool {

double EngineStats::utilization() const {
  if (workers <= 0) return 0.0;
  // A zero wall clock (empty or instantaneous campaign) would divide to
  // NaN/inf; define it as fully busy when work ran, idle otherwise.
  if (wall_seconds <= 0.0) return busy_seconds > 0.0 ? 1.0 : 0.0;
  return std::clamp(busy_seconds / (wall_seconds * workers), 0.0, 1.0);
}

double EngineStats::cache_hit_rate() const {
  const std::size_t eligible =
      jobs_total > planned_skipped ? jobs_total - planned_skipped : 0;
  if (eligible == 0) return 0.0;
  return static_cast<double>(jobs_cached) / static_cast<double>(eligible);
}

double EngineStats::completed_fraction() const {
  if (jobs_total == 0) return 1.0;
  return static_cast<double>(jobs_total - jobs_quarantined) /
         static_cast<double>(jobs_total);
}

Table engine_stats_table(const EngineStats& s) {
  Table table("Campaign engine");
  table.header({"jobs", "run", "cached", "replayed", "failed", "quarantined",
                "skipped", "attempts", "retries", "wdog", "faults", "workers",
                "wall_s", "busy_s", "util_%", "hit_%", "cache_loaded",
                "cache_corrupt", "cache_recovered"});
  table.add_row({Table::cell(s.jobs_total), Table::cell(s.jobs_run),
                 Table::cell(s.jobs_cached), Table::cell(s.jobs_replayed),
                 Table::cell(s.jobs_failed),
                 Table::cell(s.jobs_quarantined),
                 Table::cell(s.planned_skipped), Table::cell(s.attempts),
                 Table::cell(s.retries), Table::cell(s.watchdog_timeouts),
                 Table::cell(s.faults_injected),
                 Table::cell(s.workers), Table::cell(s.wall_seconds, 3),
                 Table::cell(s.busy_seconds, 3),
                 Table::cell(100.0 * s.utilization(), 1),
                 Table::cell(100.0 * s.cache_hit_rate(), 1),
                 Table::cell(s.cache_entries_loaded),
                 Table::cell(s.cache_entries_corrupt),
                 Table::cell(s.cache_recovery_events)});
  return table;
}

std::string engine_stats_line(const EngineStats& s) {
  std::ostringstream os;
  os << "engine: " << s.jobs_total << " jobs (" << s.jobs_run << " run, "
     << s.jobs_cached << " cached, " << s.jobs_failed << " failed";
  if (s.jobs_replayed > 0) os << ", " << s.jobs_replayed << " replayed";
  if (s.jobs_quarantined > 0) os << ", " << s.jobs_quarantined
                                 << " quarantined";
  if (s.planned_skipped > 0)
    os << ", " << s.planned_skipped << " skipped by plan";
  os << ") on " << s.workers << (s.workers == 1 ? " worker" : " workers");
  if (s.retries > 0) os << ", " << s.retries << " retries";
  if (s.watchdog_timeouts > 0)
    os << ", " << s.watchdog_timeouts << " watchdog timeouts";
  if (s.faults_injected > 0) os << ", " << s.faults_injected
                                << " faults injected";
  os << ", wall " << std::fixed << std::setprecision(3) << s.wall_seconds
     << " s, utilization " << std::setprecision(0)
     << 100.0 * s.utilization() << "%";
  return os.str();
}

void publish_engine_stats(const EngineStats& s) {
  if (!obs::enabled()) return;
  obs::MetricRegistry& reg = obs::MetricRegistry::instance();
  reg.counter("engine.jobs_total").set(s.jobs_total);
  reg.counter("engine.jobs_run").set(s.jobs_run);
  reg.counter("engine.jobs_cached").set(s.jobs_cached);
  reg.counter("engine.jobs_failed").set(s.jobs_failed);
  reg.counter("engine.jobs_quarantined").set(s.jobs_quarantined);
  reg.counter("engine.jobs_replayed").set(s.jobs_replayed);
  reg.counter("engine.planned_skipped").set(s.planned_skipped);
  reg.counter("engine.watchdog_timeouts").set(s.watchdog_timeouts);
  reg.counter("engine.attempts").set(s.attempts);
  reg.counter("engine.retries").set(s.retries);
  reg.counter("engine.faults_injected").set(s.faults_injected);
  reg.counter("engine.cache_entries_loaded").set(s.cache_entries_loaded);
  reg.counter("engine.cache_entries_corrupt").set(s.cache_entries_corrupt);
  reg.counter("engine.cache_recovery_events").set(s.cache_recovery_events);
  reg.gauge("engine.workers").set(s.workers);
  reg.gauge("engine.wall_seconds").set(s.wall_seconds);
  reg.gauge("engine.busy_seconds").set(s.busy_seconds);
  reg.gauge("engine.utilization").set(s.utilization());
  reg.gauge("engine.cache_hit_rate").set(s.cache_hit_rate());
  reg.gauge("engine.completed_fraction").set(s.completed_fraction());
}

}  // namespace scaltool
