#include "engine/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "engine/run_cache.hpp"
#include "io/env.hpp"
#include "runner/archive.hpp"

namespace scaltool {

namespace {

constexpr const char* kMagic = "scaltool-journal";
constexpr int kJournalVersion = 1;

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= 0xFFu;  // field separator, so ("ab","c") != ("a","bc")
  h *= 1099511628211ULL;
  return h;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::string hex32(std::uint32_t v) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(8) << v;
  return os.str();
}

/// Renders one record line (tag-first archive dialect) without the
/// trailing newline, so it can be embedded as a payload suffix.
std::string run_record_fields(const RunRecord& record) {
  std::ostringstream os;
  write_run_record(os, "R", record);
  std::string line = os.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

std::string validation_record_fields(const ValidationRecord& validation) {
  std::ostringstream os;
  write_validation_record(os, validation);
  std::string line = os.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

}  // namespace

std::uint64_t matrix_signature(const MatrixPlan& plan,
                               const MachineConfig& base_config,
                               int iterations) {
  std::uint64_t h = fnv1a_str(1469598103934665603ULL, plan.app);
  h = fnv1a_str(h, std::to_string(plan.s0));
  h = fnv1a_str(h, std::to_string(plan.l2_bytes));
  h = fnv1a_str(h, std::to_string(plan.jobs.size()));
  // Each job key folds in the machine configuration and iteration count,
  // so any knob that changes a counter value changes the signature.
  for (const RunSpec& spec : plan.jobs)
    h = fnv1a_str(h, hex64(job_key_hash(spec, base_config, iterations)));
  return h;
}

JournalWriter::JournalWriter(std::string path, bool append)
    : path_(std::move(path)) {
  ST_CHECK_MSG(!path_.empty(), "the journal needs a path");
  // When appending after a crash, a torn final record may lack its
  // newline; writing on the same line would corrupt the first new record,
  // so start with a separator (the dangling fragment then fails its CRC
  // and replay drops it, as any torn record).
  bool needs_newline = false;
  if (append) {
    std::ifstream probe(path_, std::ios::binary | std::ios::ate);
    if (probe.good() && probe.tellg() > 0) {
      probe.seekg(-1, std::ios::end);
      needs_newline = probe.get() != '\n';
    }
  }
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (!append) flags |= O_TRUNC;
  fd_ = io::Env::instance().open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    const int err = errno;
    std::ostringstream os;
    os << "cannot open journal " << path_ << ": " << std::strerror(err);
    if (io::is_storage_errno(err)) throw io::StorageError(os.str(), err);
    ST_CHECK_MSG(false, os.str());
  }
  if (needs_newline) write_line("\n");
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) io::Env::instance().close(fd_);
}

void JournalWriter::write_line(const std::string& line) {
  // One write() per record: O_APPEND makes each line land contiguously
  // even with every worker appending, and a crash tears at most the final
  // record — which replay truncates away. A failed or zero write throws
  // StorageError: a journal that silently lost a record would defeat the
  // resume guarantee, so the campaign checkpoints and stops instead.
  io::write_all(io::Env::instance(), fd_, line.data(), line.size(),
                "journal " + path_);
}

void JournalWriter::write_record(const std::string& payload) {
  write_line("C|" + hex32(crc32(payload)) + "|" + payload + "\n");
}

void JournalWriter::sync() {
  if (io::Env::instance().fsync(fd_) != 0) {
    const int err = errno;
    throw io::StorageError(
        "fsync of journal " + path_ + " failed: " + std::strerror(err), err);
  }
}

void JournalWriter::begin(std::uint64_t signature, const MatrixPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream header;
  header << kMagic << '|' << kJournalVersion << '|' << hex64(signature)
         << '\n';
  write_line(header.str());
  std::ostringstream meta;
  meta << "META|" << plan.app << '|' << plan.s0 << '|' << plan.l2_bytes << '|'
       << plan.jobs.size();
  write_record(meta.str());
  sync();
}

void JournalWriter::append_run(std::size_t job, std::uint64_t key,
                               const JobOutcome& outcome,
                               bool has_validation) {
  std::ostringstream payload;
  payload << "RUN|" << job << '|' << hex64(key) << '|'
          << (has_validation ? 1 : 0) << '|'
          << run_record_fields(outcome.record);
  if (has_validation)
    payload << '|' << validation_record_fields(outcome.validation);
  std::lock_guard<std::mutex> lock(mu_);
  write_record(payload.str());
}

void JournalWriter::append_commit(const std::string& archive_path,
                                  std::size_t bytes,
                                  std::uint32_t archive_crc) {
  std::ostringstream payload;
  payload << "COMMIT|" << archive_path << '|' << bytes << '|'
          << hex32(archive_crc);
  std::lock_guard<std::mutex> lock(mu_);
  write_record(payload.str());
  sync();
}

namespace {

/// Applies one CRC-valid payload to the replay. Returns false when the
/// payload is malformed — the caller treats that exactly like a CRC
/// failure and truncates to the prefix before it.
bool apply_payload(const std::string& payload, JournalReplay& replay) {
  const std::vector<std::string> f = split_record(payload);
  if (f.empty()) return false;
  try {
    if (f[0] == "META") {
      if (f.size() != 5) return false;
      if (!replay.app.empty()) {
        ++replay.duplicates;
        return true;
      }
      replay.app = f[1];
      replay.s0 = static_cast<std::size_t>(std::stoull(f[2]));
      replay.l2_bytes = static_cast<std::size_t>(std::stoull(f[3]));
      replay.jobs_planned = static_cast<std::size_t>(std::stoull(f[4]));
      return true;
    }
    if (f[0] == "RUN") {
      // RUN|job|key|hv|R|<15 fields>[|VALID|<8 fields>]
      if (f.size() != 20 && f.size() != 29) return false;
      const auto job = static_cast<std::size_t>(std::stoull(f[1]));
      ReplayedRun run;
      run.key = std::stoull(f[2], nullptr, 16);
      run.has_validation = f[3] == "1";
      if (run.has_validation != (f.size() == 29)) return false;
      const std::vector<std::string> run_fields(f.begin() + 4,
                                                f.begin() + 20);
      run.outcome.record = parse_run_record(run_fields);
      if (run.has_validation) {
        const std::vector<std::string> valid_fields(f.begin() + 20, f.end());
        run.outcome.validation = parse_validation_record(valid_fields);
      }
      if (!replay.runs.emplace(job, std::move(run)).second)
        ++replay.duplicates;  // first occurrence wins
      return true;
    }
    if (f[0] == "COMMIT") {
      if (f.size() != 4) return false;
      replay.committed = true;
      replay.archive_path = f[1];
      replay.archive_bytes = static_cast<std::size_t>(std::stoull(f[2]));
      replay.archive_crc =
          static_cast<std::uint32_t>(std::stoul(f[3], nullptr, 16));
      return true;
    }
  } catch (const std::exception&) {
    return false;  // numeric garbage inside a record: damage, not UB
  }
  return false;  // unknown record tag: written by a future version
}

}  // namespace

JournalReplay replay_journal(const std::string& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.good(), "cannot read journal " << path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  ST_CHECK_MSG(!lines.empty(), path << " is not a scaltool journal "
                                       "(empty file)");

  JournalReplay replay;
  {
    const std::vector<std::string> header = split_record(lines.front());
    ST_CHECK_MSG(header.size() == 3 && header[0] == kMagic,
                 path << " is not a scaltool journal");
    ST_CHECK_MSG(header[1] == std::to_string(kJournalVersion),
                 "journal " << path << " has unsupported version "
                            << header[1] << " (this build reads version "
                            << kJournalVersion << ")");
    try {
      replay.signature = std::stoull(header[2], nullptr, 16);
    } catch (const std::exception&) {
      ST_CHECK_MSG(false, "journal " << path
                                     << " has a damaged matrix signature");
    }
  }

  // Longest valid prefix: the first damaged record ends the replay; every
  // line from there on (including itself) is dropped and counted.
  replay.valid_prefix_bytes = lines.front().size() + 1;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& record = lines[i];
    bool ok = record.size() > 11 && record[0] == 'C' && record[1] == '|' &&
              record[10] == '|';
    std::string payload;
    if (ok) {
      payload = record.substr(11);
      try {
        const auto crc = static_cast<std::uint32_t>(
            std::stoul(record.substr(2, 8), nullptr, 16));
        ok = crc == crc32(payload);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (ok) ok = apply_payload(payload, replay);
    if (!ok) {
      replay.records_dropped = lines.size() - i;
      break;
    }
    ++replay.records_ok;
    replay.valid_prefix_bytes += record.size() + 1;
  }
  return replay;
}

}  // namespace scaltool
