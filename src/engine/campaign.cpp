#include "engine/campaign.hpp"

#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <sstream>
#include <utility>

#include "apps/apps.hpp"
#include "common/check.hpp"
#include "engine/thread_pool.hpp"
#include "machine/dsm_machine.hpp"
#include "trace/registry.hpp"

namespace scaltool {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

CampaignEngine::CampaignEngine(const ExperimentRunner& runner,
                               CampaignOptions options)
    : runner_(runner),
      options_(std::move(options)),
      cache_(options_.cache_path) {
  ST_CHECK_MSG(options_.jobs >= 1, "the engine needs at least one worker");
}

ScalToolInputs CampaignEngine::collect(const std::string& workload,
                                       std::size_t s0,
                                       std::span<const int> proc_counts) {
  const MatrixPlan plan = runner_.plan_matrix(workload, s0, proc_counts);
  const std::vector<JobOutcome> outcomes = execute(plan);
  return assemble_matrix(plan, outcomes);
}

JobOutcome CampaignEngine::execute_job(const RunSpec& spec,
                                       std::uint64_t key) const {
  const auto workload = WorkloadRegistry::instance().create(spec.workload);
  MachineConfig cfg = runner_.config_for(spec.num_procs);
  // Independent per-job RNG streams, stable across execution orders (only
  // the kRandom replacement policy consumes them).
  cfg.l1.random_seed = derive_seed(cfg.l1.random_seed, key);
  cfg.l2.random_seed = derive_seed(cfg.l2.random_seed + 1, key);
  DsmMachine machine(cfg);
  const RunResult result =
      machine.run(*workload, runner_.params_for(spec.dataset_bytes));
  JobOutcome out;
  out.record = make_record(result);
  out.validation = make_validation(result);
  return out;
}

std::vector<JobOutcome> CampaignEngine::execute(const MatrixPlan& plan) {
  register_standard_workloads();
  stats_ = EngineStats{};
  stats_.workers = options_.jobs;
  stats_.jobs_total = plan.jobs.size();
  stats_.cache_entries_loaded = cache_.loaded_entries();
  stats_.cache_entries_corrupt = cache_.corrupt_entries();
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<JobOutcome> outcomes(plan.jobs.size());
  std::mutex mu;  // guards stats counters and the on_run callback
  std::exception_ptr first_error;

  const auto run_one = [&](std::size_t i) {
    const RunSpec& spec = plan.jobs[i];
    const std::uint64_t key =
        job_key_hash(spec, runner_.base_config(), runner_.iterations);
    if (std::optional<JobOutcome> hit = cache_.find(key, spec)) {
      outcomes[i] = std::move(*hit);
      std::lock_guard<std::mutex> lock(mu);
      ++stats_.jobs_cached;
      return;
    }
    if (options_.on_run) {
      std::ostringstream os;
      os << spec.workload << " s=" << spec.dataset_bytes
         << " p=" << spec.num_procs;
      std::lock_guard<std::mutex> lock(mu);
      options_.on_run(os.str());
    }
    const auto job_t0 = std::chrono::steady_clock::now();
    JobOutcome out = execute_job(spec, key);
    const double took = seconds_since(job_t0);
    cache_.insert(key, spec, out);
    outcomes[i] = std::move(out);
    std::lock_guard<std::mutex> lock(mu);
    ++stats_.jobs_run;
    stats_.busy_seconds += took;
  };

  {
    ThreadPool pool(options_.jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(plan.jobs.size());
    for (std::size_t i = 0; i < plan.jobs.size(); ++i)
      futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        ++stats_.jobs_failed;
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  stats_.wall_seconds = seconds_since(t0);
  cache_.save();
  if (first_error) std::rethrow_exception(first_error);
  return outcomes;
}

ScalToolInputs run_matrix_parallel(const ExperimentRunner& runner,
                                   const std::string& workload,
                                   std::size_t s0,
                                   std::span<const int> proc_counts,
                                   const CampaignOptions& options,
                                   EngineStats* stats_out) {
  CampaignEngine engine(runner, options);
  ScalToolInputs inputs = engine.collect(workload, s0, proc_counts);
  if (stats_out) *stats_out = engine.stats();
  return inputs;
}

}  // namespace scaltool
