#include "engine/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include <filesystem>

#include "apps/apps.hpp"
#include "common/check.hpp"
#include "common/monotime.hpp"
#include "engine/checkpoint.hpp"
#include "engine/thread_pool.hpp"
#include "io/env.hpp"
#include "machine/dsm_machine.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "trace/registry.hpp"

namespace scaltool {

namespace {

std::string describe_spec(const RunSpec& spec) {
  std::ostringstream os;
  os << spec.workload << " s=" << spec.dataset_bytes
     << " p=" << spec.num_procs;
  return os.str();
}

}  // namespace

CampaignEngine::CampaignEngine(const ExperimentRunner& runner,
                               CampaignOptions options)
    : runner_(runner), options_(std::move(options)) {
  ST_CHECK_MSG(options_.jobs >= 1, "the engine needs at least one worker");
  ST_CHECK_MSG(options_.retries >= 0, "--retries must be >= 0");
  ST_CHECK_MSG(options_.backoff_ms >= 0, "--backoff-ms must be >= 0");
  ST_CHECK_MSG(options_.run_timeout_ms >= 0,
               "--run-timeout-ms must be >= 0");
  ST_CHECK_MSG(!(options_.shared_cache && !options_.cache_path.empty()),
               "a shared run cache and --cache are mutually exclusive");
  cache_ = options_.shared_cache
               ? options_.shared_cache
               : std::make_shared<RunCache>(options_.cache_path);
  if (options_.faults.enabled())
    injector_ = std::make_unique<FaultInjector>(options_.faults);
}

ScalToolInputs CampaignEngine::collect(const std::string& workload,
                                       std::size_t s0,
                                       std::span<const int> proc_counts) {
  const MatrixPlan plan = [&] {
    obs::Span span("campaign.plan", "engine");
    span.arg("workload", workload).arg("s0", s0);
    return runner_.plan_matrix(workload, s0, proc_counts);
  }();
  const std::vector<JobOutcome> outcomes = execute(plan);
  obs::Span join_span("campaign.join", "engine");
  join_span.arg("quarantined", quarantined_.size());
  if (quarantined_.empty()) return assemble_matrix(plan, outcomes);

  std::vector<bool> available(plan.jobs.size(), true);
  std::vector<std::string> quarantine_notes;
  for (const QuarantinedJob& q : quarantined_) {
    available[q.job] = false;
    std::ostringstream os;
    os << "quarantined after " << q.attempts << " attempts: "
       << describe_spec(q.spec) << " — " << q.error;
    quarantine_notes.push_back(os.str());
  }
  ScalToolInputs inputs = assemble_matrix_partial(plan, outcomes, available);
  inputs.notes.insert(inputs.notes.begin(), quarantine_notes.begin(),
                      quarantine_notes.end());
  return inputs;
}

JobOutcome CampaignEngine::execute_job(const RunSpec& spec,
                                       std::uint64_t key) const {
  const auto workload = WorkloadRegistry::instance().create(spec.workload);
  MachineConfig cfg = runner_.config_for(spec.num_procs);
  // Independent per-job RNG streams, stable across execution orders (only
  // the kRandom replacement policy consumes them).
  cfg.l1.random_seed = derive_seed(cfg.l1.random_seed, key);
  cfg.l2.random_seed = derive_seed(cfg.l2.random_seed + 1, key);
  DsmMachine machine(cfg);
  const RunResult result =
      machine.run(*workload, runner_.params_for(spec.dataset_bytes));
  JobOutcome out;
  out.record = make_record(result);
  out.validation = make_validation(result);
  return out;
}

void CampaignEngine::prepare_journal(const MatrixPlan& plan) {
  if (options_.journal_path.empty()) {
    journal_.reset();
    replay_.clear();
    return;
  }
  const std::uint64_t signature =
      matrix_signature(plan, runner_.base_config(), runner_.iterations);
  // The adaptive planner executes one batch per call against the same
  // plan; the journal (and the replay seed a --resume loaded) must span
  // all of them, so an already-open journal for this matrix is kept.
  if (journal_ && journal_signature_ == signature) return;
  journal_.reset();
  replay_.clear();
  journal_signature_ = signature;
  if (options_.resume &&
      std::filesystem::exists(options_.journal_path)) {
    obs::Span span("journal.replay", "engine");
    JournalReplay replay = replay_journal(options_.journal_path);
    ST_CHECK_MSG(
        replay.signature == signature,
        "journal " << options_.journal_path
                   << " was written for a different matrix; delete it or "
                      "collect without --resume");
    for (auto& [job, run] : replay.runs) {
      // A record for a job the plan does not have (or whose content key
      // moved) is stale; re-run rather than trust it.
      if (job >= plan.jobs.size()) continue;
      if (run.key != job_key_hash(plan.jobs[job], runner_.base_config(),
                                  runner_.iterations))
        continue;
      replay_.emplace(job, std::move(run));
    }
    span.arg("replayed", replay_.size()).arg("dropped",
                                             replay.records_dropped);
    // Truncate away any torn tail before appending, so a damaged record
    // never sits mid-file shadowing the records this campaign adds.
    std::error_code ec;
    const auto size =
        std::filesystem::file_size(options_.journal_path, ec);
    if (!ec && replay.valid_prefix_bytes < size)
      std::filesystem::resize_file(options_.journal_path,
                                   replay.valid_prefix_bytes, ec);
    journal_ =
        std::make_unique<JournalWriter>(options_.journal_path, true);
    return;
  }
  journal_ = std::make_unique<JournalWriter>(options_.journal_path, false);
  journal_->begin(signature, plan);
}

std::vector<JobOutcome> CampaignEngine::execute(
    const MatrixPlan& plan, const std::vector<bool>* selected) {
  ST_CHECK_MSG(selected == nullptr || selected->size() == plan.jobs.size(),
               "job-selection mask does not match the plan: "
                   << (selected ? selected->size() : 0) << " vs "
                   << plan.jobs.size());
  register_standard_workloads();
  prepare_journal(plan);
  stats_ = EngineStats{};
  stats_.workers = options_.jobs;
  stats_.jobs_total = plan.jobs.size();
  stats_.cache_entries_loaded = cache_->loaded_entries();
  stats_.cache_entries_corrupt = cache_->corrupt_entries();
  stats_.cache_recovery_events = cache_->corrupt_entries();
  quarantined_.clear();
  events_.clear();
  obs::Span exec_span("campaign.execute", "engine");
  exec_span.arg("app", plan.app)
      .arg("jobs", plan.jobs.size())
      .arg("workers", options_.jobs);
  obs::Histogram& job_seconds =
      obs::MetricRegistry::instance().histogram("engine.job_seconds");
  const Stopwatch wall;

  std::vector<JobOutcome> outcomes(plan.jobs.size());
  std::mutex mu;  // guards stats counters, the event log and on_run
  std::exception_ptr first_error;

  const auto log_event = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    events_.push_back(line);
  };

  const int max_attempts = options_.retries + 1;
  const auto run_one = [&](std::size_t i) {
    const RunSpec& spec = plan.jobs[i];
    if (selected && !(*selected)[i]) {
      // The planner decided this grid point is not (yet) worth paying
      // for: no simulator, no cache traffic, no journal record — the
      // point simply does not exist this batch.
      std::lock_guard<std::mutex> lock(mu);
      ++stats_.planned_skipped;
      return;
    }
    // Cooperative cancellation: a fired deadline stops new jobs before
    // they touch the simulator; jobs already running finish normally.
    if (options_.cancelled && options_.cancelled()) {
      obs::instant("job.cancelled", "engine");
      throw CampaignCancelled(describe_spec(spec) + ": campaign cancelled");
    }
    const std::uint64_t key =
        job_key_hash(spec, runner_.base_config(), runner_.iterations);
    obs::Span job_span("job", "engine");
    job_span.arg("workload", spec.workload)
        .arg("bytes", spec.dataset_bytes)
        .arg("procs", spec.num_procs);
    if (const auto replayed = replay_.find(i); replayed != replay_.end()) {
      // Seeded from the journal: this run completed in a previous
      // (killed) process and is never re-simulated. Its record is
      // already on disk, so nothing is appended.
      job_span.arg("source", "journal");
      cache_->insert(key, spec, replayed->second.outcome,
                     replayed->second.has_validation);
      outcomes[i] = replayed->second.outcome;
      std::lock_guard<std::mutex> lock(mu);
      ++stats_.jobs_replayed;
      return;
    }
    if (std::optional<JobOutcome> hit = cache_->find(key, spec)) {
      job_span.arg("source", "cache");
      if (journal_)
        journal_->append_run(i, key, *hit, spec.want_validation);
      outcomes[i] = std::move(*hit);
      std::lock_guard<std::mutex> lock(mu);
      ++stats_.jobs_cached;
      return;
    }
    const bool faultable = injector_ && injector_->applies_to(spec);
    std::string last_error;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++stats_.attempts;
        if (attempt > 0) ++stats_.retries;
        if (options_.on_run) {
          std::ostringstream os;
          os << describe_spec(spec);
          if (attempt > 0) os << " (attempt " << attempt + 1 << ")";
          options_.on_run(os.str());
        }
      }
      const Stopwatch job_timer;
      try {
        if (faultable) {
          if (const int ms = injector_->stall_ms(key, attempt)) {
            obs::Span stall_span("job.stall", "fault");
            stall_span.arg("ms", ms);
            // Sliced so a hung run stays cancellable: the watchdog and
            // the cooperative-cancellation hook are polled every
            // millisecond of the stall instead of after it.
            for (int slept = 0; slept < ms; ++slept) {
              if (options_.run_timeout_ms > 0 &&
                  job_timer.seconds() * 1000.0 >
                      static_cast<double>(options_.run_timeout_ms)) {
                obs::instant("job.watchdog_timeout", "engine");
                {
                  std::lock_guard<std::mutex> lock(mu);
                  ++stats_.watchdog_timeouts;
                }
                throw std::runtime_error(
                    "run watchdog: attempt exceeded " +
                    std::to_string(options_.run_timeout_ms) + " ms");
              }
              if (options_.cancelled && options_.cancelled())
                throw CampaignCancelled(describe_spec(spec) +
                                        ": campaign cancelled");
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
          ST_CHECK_MSG(!injector_->permanent_fault(key, attempt),
                       "injected permanent fault");
          ST_CHECK_MSG(!injector_->transient_fault(key, attempt),
                       "injected transient fault");
        }
        JobOutcome out = execute_job(spec, key);
        if (faultable) {
          const std::string injected = injector_->perturb(key, out);
          if (!injected.empty())
            log_event(describe_spec(spec) + ": " + injected);
        }
        const double took = job_timer.seconds();
        job_seconds.observe(took);
        job_span.arg("source", "run").arg("attempts", attempt + 1);
        cache_->insert(key, spec, out);
        // Journal before announcing the run boundary: when the seeded
        // crash fault kills the process here, the run it crashed on is
        // already recoverable.
        if (journal_)
          journal_->append_run(i, key, out, spec.want_validation);
        if (injector_) injector_->run_boundary();
        outcomes[i] = std::move(out);
        std::lock_guard<std::mutex> lock(mu);
        ++stats_.jobs_run;
        stats_.busy_seconds += took;
        return;
      } catch (const CampaignCancelled&) {
        throw;  // cancellation is not a failed attempt: no retry
      } catch (const io::StorageError&) {
        // A full or dying disk is not a flaky run: retrying the job burns
        // simulation time against a fault that needs an operator. Stop
        // the campaign; completed runs are journaled for --resume.
        throw;
      } catch (const std::exception& e) {
        last_error = e.what();
        std::ostringstream os;
        os << describe_spec(spec) << ": attempt " << attempt + 1 << "/"
           << max_attempts << " failed — " << last_error;
        log_event(os.str());
        if (attempt + 1 < max_attempts && options_.backoff_ms > 0) {
          // Exponent clamped so arbitrary --retries cannot overflow the
          // shift (the doubling saturates, it never wraps negative).
          const std::int64_t delay_ms =
              static_cast<std::int64_t>(options_.backoff_ms)
              << std::min(attempt, 20);
          obs::Span backoff_span("job.backoff", "engine");
          backoff_span.arg("ms", delay_ms).arg("attempt", attempt + 1);
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        }
      }
    }
    // All attempts exhausted.
    if (options_.keep_going) {
      std::ostringstream os;
      os << describe_spec(spec) << ": quarantined after " << max_attempts
         << (max_attempts == 1 ? " attempt" : " attempts") << " — "
         << last_error;
      log_event(os.str());
      obs::instant("job.quarantine", "engine");
      std::lock_guard<std::mutex> lock(mu);
      ++stats_.jobs_quarantined;
      quarantined_.push_back({i, spec, max_attempts, last_error});
      return;
    }
    ST_CHECK_MSG(false, describe_spec(spec) << " failed after "
                                            << max_attempts
                                            << (max_attempts == 1
                                                    ? " attempt: "
                                                    : " attempts: ")
                                            << last_error);
  };

  {
    ThreadPool pool(options_.jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(plan.jobs.size());
    for (std::size_t i = 0; i < plan.jobs.size(); ++i)
      futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        ++stats_.jobs_failed;
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  stats_.wall_seconds = wall.seconds();
  if (injector_) stats_.faults_injected = injector_->counts().total();
  cache_->save();
  // Disk-rot injection happens after the save so the *next* campaign — or
  // the warm pass of this one — exercises the loader's recovery path.
  if (injector_ && !options_.cache_path.empty())
    injector_->corrupt_cache_file(options_.cache_path);
  // Publish before a possible rethrow so the metrics export reflects even
  // a failed campaign.
  publish_engine_stats(stats_);
  if (first_error) std::rethrow_exception(first_error);
  // Keep quarantined jobs sorted by plan index: worker completion order is
  // nondeterministic, the journal should not be.
  std::sort(quarantined_.begin(), quarantined_.end(),
            [](const QuarantinedJob& a, const QuarantinedJob& b) {
              return a.job < b.job;
            });
  std::sort(events_.begin(), events_.end());
  return outcomes;
}

ScalToolInputs run_matrix_parallel(const ExperimentRunner& runner,
                                   const std::string& workload,
                                   std::size_t s0,
                                   std::span<const int> proc_counts,
                                   const CampaignOptions& options,
                                   EngineStats* stats_out) {
  CampaignEngine engine(runner, options);
  ScalToolInputs inputs = engine.collect(workload, s0, proc_counts);
  if (stats_out) *stats_out = engine.stats();
  return inputs;
}

}  // namespace scaltool
