#include "engine/fsck.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "common/crc32.hpp"
#include "engine/journal.hpp"
#include "engine/run_cache.hpp"
#include "obs/json.hpp"
#include "runner/archive.hpp"

namespace scaltool {

namespace {

/// Whole file as bytes; false when unreadable.
bool slurp(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  std::ostringstream os;
  os << is.rdbuf();
  out = os.str();
  return true;
}

void add(FsckReport& report, std::string code, std::string detail,
         bool repaired = false) {
  report.findings.push_back(
      FsckFinding{std::move(code), std::move(detail), repaired});
}

/// Splits on '\n', keeping byte offsets honest: `line_start` of entry i
/// is the offset of that line's first byte in the file.
struct Lines {
  std::vector<std::string> text;
  std::vector<std::size_t> start;
};

Lines split_lines(const std::string& bytes) {
  Lines lines;
  std::size_t pos = 0;
  while (pos <= bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < bytes.size()) {
        lines.text.push_back(bytes.substr(pos));
        lines.start.push_back(pos);
      }
      break;
    }
    lines.text.push_back(bytes.substr(pos, nl - pos));
    lines.start.push_back(pos);
    pos = nl + 1;
  }
  return lines;
}

/// Parses the hex8 payload of a "SUM|xxxxxxxx" line; false on garbage.
bool parse_sum(const std::string& line, std::uint32_t& out) {
  const auto fields = split_record(line);
  if (fields.size() != 2 || fields[1].size() != 8) return false;
  try {
    std::size_t pos = 0;
    out = static_cast<std::uint32_t>(std::stoul(fields[1], &pos, 16));
    return pos == fields[1].size();
  } catch (const std::exception&) {
    return false;
  }
}

std::string hex8(std::uint32_t v) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(8) << v;
  return os.str();
}

void check_archive(const std::string& path, const std::string& bytes,
                   bool repair, FsckReport& report) {
  const Lines lines = split_lines(bytes);
  // Locate the first SUM line; everything before it is the checksummed
  // body, anything after it is appended garbage.
  std::size_t sum_index = lines.text.size();
  for (std::size_t i = 0; i < lines.text.size(); ++i) {
    if (lines.text[i].rfind("SUM|", 0) == 0) {
      sum_index = i;
      break;
    }
  }

  bool body_trustworthy = true;
  if (sum_index == lines.text.size()) {
    // Pre-footer archive (or the footer was torn off with the tail — the
    // CRC cannot tell the difference, which is why the journal's COMMIT
    // marker exists). Verify the body parses; add the footer on repair.
    bool parses = true;
    std::string parse_error;
    try {
      std::istringstream is(bytes);
      read_inputs(is);
    } catch (const std::exception& e) {
      parses = false;
      parse_error = e.what();
    }
    if (!parses) {
      // A torn publish usually lands here: the tail (and with it the SUM
      // footer) is gone and some record is cut mid-line. The data cannot
      // be reconstructed from this file, so the repair is the same as for
      // a footer mismatch — quarantine it so collect --resume republishes
      // from the journal instead of trusting the damage.
      bool repaired = false;
      if (repair) {
        std::error_code ec;
        std::filesystem::rename(path, path + ".corrupt", ec);
        repaired = !ec;
      }
      report.fatal = !repaired;
      add(report, "archive.unparseable",
          parse_error +
              (repaired ? " — quarantined to " + path +
                              ".corrupt; rerun collect --resume to republish"
                        : " — rerun with --repair to quarantine, then "
                          "collect --resume"),
          repaired);
      return;
    }
    bool repaired = false;
    if (repair) {
      std::istringstream is(bytes);
      save_inputs(read_inputs(is), path);
      repaired = true;
    }
    add(report, "archive.footer-missing",
        "no SUM footer; body parses cleanly" +
            std::string(repaired ? "; footer written" : ""),
        repaired);
    return;
  }

  const std::string body = bytes.substr(0, lines.start[sum_index]);
  std::uint32_t stored = 0;
  if (!parse_sum(lines.text[sum_index], stored)) {
    report.fatal = true;
    add(report, "archive.footer-malformed", lines.text[sum_index]);
    body_trustworthy = false;
  } else if (const std::uint32_t actual = crc32(body); actual != stored) {
    // The bytes are not what the writer published. Guessing a fix would
    // manufacture measurement data; the only safe move is to get the file
    // out of the way so the journal-backed recovery path republishes.
    body_trustworthy = false;
    bool repaired = false;
    if (repair) {
      std::error_code ec;
      std::filesystem::rename(path, path + ".corrupt", ec);
      repaired = !ec;
    }
    report.fatal = !repaired;
    add(report, "archive.footer-mismatch",
        "SUM footer says " + hex8(stored) + ", contents hash to " +
            hex8(actual) +
            (repaired ? "; quarantined to " + path +
                            ".corrupt — rerun collect --resume to republish"
                      : "; rerun with --repair to quarantine, then "
                        "collect --resume"),
        repaired);
  }

  if (bytes.back() != '\n' && sum_index == lines.text.size() - 1) {
    // Only the footer's own terminator is missing: everything the CRC
    // covers survived and the torn byte is the final newline itself.
    // Restoring it is a pure reconstruction, no guessing involved.
    bool repaired = false;
    if (repair && body_trustworthy) {
      std::ofstream os(path, std::ios::binary | std::ios::app);
      os << '\n';
      repaired = os.good();
    }
    add(report, "archive.torn-newline",
        "the SUM footer is not newline-terminated (tail torn mid-line)" +
            std::string(repaired ? "; newline restored" : ""),
        repaired);
  }

  if (sum_index + 1 < lines.text.size()) {
    // Bytes after the footer: appended after publication, never covered
    // by the checksum. Truncating back to the footer is always safe.
    bool repaired = false;
    if (repair && body_trustworthy) {
      std::error_code ec;
      std::filesystem::resize_file(
          path, lines.start[sum_index] + lines.text[sum_index].size() + 1,
          ec);
      repaired = !ec;
    }
    add(report, "archive.trailing-garbage",
        std::to_string(lines.text.size() - sum_index - 1) +
            " line(s) after the SUM footer" +
            (repaired ? "; truncated" : ""),
        repaired);
  }

  if (body_trustworthy) {
    try {
      std::istringstream is(body);
      read_inputs(is);
    } catch (const std::exception& e) {
      // Checksum matches but the records do not parse: the file was
      // written by a damaged writer, not damaged at rest. Nothing to
      // repair from here.
      report.fatal = true;
      add(report, "archive.unparseable", e.what());
    }
  }
}

void check_journal(const std::string& path, const std::string& bytes,
                   bool repair, FsckReport& report) {
  if (!bytes.empty() && bytes.back() != '\n') {
    // A record torn mid-append. Even when its CRC happens to verify, the
    // writer never finished the line; the WAL contract (any suffix may be
    // dropped) makes truncating it the safe repair — it costs at most one
    // re-run on resume.
    const std::size_t last_nl = bytes.find_last_of('\n');
    const std::size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
    bool repaired = false;
    if (repair) {
      std::error_code ec;
      std::filesystem::resize_file(path, keep, ec);
      repaired = !ec;
    }
    add(report, "journal.torn-tail",
        "final record is not newline-terminated (torn mid-append)" +
            std::string(repaired ? "; truncated to " + std::to_string(keep) +
                                       " bytes"
                                 : ""),
        repaired);
  }

  JournalReplay replay;
  try {
    replay = replay_journal(path);
  } catch (const std::exception& e) {
    report.fatal = true;
    add(report, "journal.unreadable", e.what());
    return;
  }

  if (replay.records_dropped > 0) {
    // The torn tail every crash can leave. Truncating to the longest
    // valid prefix is exactly what a resume does in memory; doing it on
    // disk makes the file self-consistent for every later reader.
    bool repaired = false;
    if (repair) {
      std::error_code ec;
      std::filesystem::resize_file(path, replay.valid_prefix_bytes, ec);
      repaired = !ec;
    }
    add(report, "journal.torn-tail",
        std::to_string(replay.records_dropped) +
            " damaged line(s) after " + std::to_string(replay.records_ok) +
            " valid record(s)" +
            (repaired ? "; truncated to " +
                            std::to_string(replay.valid_prefix_bytes) +
                            " bytes"
                      : ""),
        repaired);
  }

  if (replay.duplicates > 0) {
    add(report, "journal.duplicate-records",
        std::to_string(replay.duplicates) +
            " duplicate record(s); replay keeps first occurrences",
        /*repaired=*/true);  // replay semantics already neutralize these
  }

  if (!replay.committed) return;

  // COMMIT reconciliation: the journal swears an archive of exactly these
  // bytes was staged. Hold the file on disk to that.
  std::string archive_bytes;
  if (!slurp(replay.archive_path, archive_bytes)) {
    add(report, "journal.commit-unpublished",
        "COMMIT names " + replay.archive_path +
            " (" + std::to_string(replay.archive_bytes) +
            " bytes) but the file is missing — rerun collect --resume to "
            "republish from the journal");
    return;
  }
  const std::uint32_t actual = crc32(archive_bytes);
  if (archive_bytes.size() == replay.archive_bytes &&
      actual == replay.archive_crc)
    return;  // published archive is byte-exact
  bool repaired = false;
  if (repair) {
    std::error_code ec;
    std::filesystem::rename(replay.archive_path,
                            replay.archive_path + ".corrupt", ec);
    repaired = !ec;
  }
  report.fatal = !repaired;
  std::ostringstream detail;
  detail << "COMMIT recorded " << replay.archive_bytes << " bytes, crc "
         << hex8(replay.archive_crc) << "; " << replay.archive_path
         << " holds " << archive_bytes.size() << " bytes, crc "
         << hex8(actual)
         << (repaired ? " — quarantined to " + replay.archive_path +
                            ".corrupt; rerun collect --resume to republish"
                      : " — rerun with --repair to quarantine, then "
                        "collect --resume");
  add(report, "journal.commit-mismatch", detail.str(), repaired);
}

void check_cache(const std::string& path, const std::string& bytes,
                 bool repair, FsckReport& report) {
  // Footer first: the tolerant loader cannot see single-bit rot inside a
  // numeric field (the value still parses), but the SUM line can.
  const Lines lines = split_lines(bytes);
  std::size_t sum_index = lines.text.size();
  for (std::size_t i = 0; i < lines.text.size(); ++i) {
    if (lines.text[i].rfind("SUM|", 0) == 0) {
      sum_index = i;
      break;
    }
  }
  bool footer_mismatch = false;
  if (sum_index == lines.text.size()) {
    add(report, "cache.footer-missing",
        "no SUM footer (pre-footer cache file)");
  } else {
    std::uint32_t stored = 0;
    const std::string body = bytes.substr(0, lines.start[sum_index]);
    if (!parse_sum(lines.text[sum_index], stored) ||
        crc32(body) != stored) {
      footer_mismatch = true;
      add(report, "cache.footer-mismatch",
          "cache bytes do not match their SUM footer");
    }
  }

  if (bytes.back() != '\n')
    add(report, "cache.torn-newline",
        "the final line is not newline-terminated (tail torn mid-line)");

  // Entry-granular tolerance: count what the loader would drop.
  RunCache probe(path);
  if (probe.corrupt_entries() > 0) {
    add(report, "cache.corrupt-entries",
        std::to_string(probe.corrupt_entries()) +
            " corrupt entr" +
            (probe.corrupt_entries() == 1 ? "y" : "ies") + ", " +
            std::to_string(probe.loaded_entries()) + " valid");
  }

  if (report.findings.empty() || !repair) return;

  // Repair policy. When the loader can SEE the damage (corrupt entries),
  // dropping exactly those entries explains the footer mismatch, and the
  // rewrite keeps every entry that verified under a fresh footer. A
  // footer mismatch with zero visibly corrupt entries is the dangerous
  // case — rot inside a numeric field that still parses, invisible to
  // the tolerant loader — and there the only safe repair is to discard
  // the memo wholesale (always safe: the campaign re-runs the jobs).
  const bool discard = footer_mismatch && probe.corrupt_entries() == 0;
  if (discard) {
    std::remove(path.c_str());
  } else {
    probe.save();
  }
  for (FsckFinding& f : report.findings) {
    f.repaired = true;
    f.detail += discard ? "; cache discarded (jobs will re-run)"
                        : "; cache rewritten with valid entries";
  }
}

}  // namespace

bool FsckReport::fully_repaired() const {
  if (fatal || findings.empty()) return false;
  for (const FsckFinding& f : findings)
    if (!f.repaired) return false;
  return true;
}

std::string FsckReport::to_json() const {
  std::ostringstream os;
  os << "{\"path\":\"" << obs::json_escape(path) << "\",\"kind\":\"" << kind
     << "\",\"clean\":" << (clean() ? "true" : "false")
     << ",\"fatal\":" << (fatal ? "true" : "false") << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const FsckFinding& f = findings[i];
    if (i > 0) os << ',';
    os << "{\"code\":\"" << obs::json_escape(f.code) << "\",\"detail\":\""
       << obs::json_escape(f.detail)
       << "\",\"repaired\":" << (f.repaired ? "true" : "false") << '}';
  }
  os << "]}";
  return os.str();
}

void FsckReport::print(std::ostream& os) const {
  os << "fsck " << path << " (" << kind << "): ";
  if (clean()) {
    os << "clean\n";
    return;
  }
  os << findings.size() << " finding(s)" << (fatal ? ", FATAL" : "")
     << "\n";
  for (const FsckFinding& f : findings) {
    os << "  [" << (f.repaired ? "repaired" : "found") << "] " << f.code
       << ": " << f.detail << "\n";
  }
}

FsckReport fsck_file(const std::string& path, bool repair) {
  FsckReport report;
  report.path = path;
  report.kind = "unknown";

  std::string bytes;
  if (!slurp(path, bytes)) {
    report.fatal = true;
    add(report, "unreadable", "cannot open " + path);
    return report;
  }
  if (bytes.empty()) {
    report.fatal = true;
    add(report, "empty", "zero-byte file");
    return report;
  }

  const std::string first_line = bytes.substr(0, bytes.find('\n'));
  if (first_line.rfind("scaltool-inputs|", 0) == 0) {
    report.kind = "archive";
    check_archive(path, bytes, repair, report);
  } else if (first_line.rfind("scaltool-journal|", 0) == 0) {
    report.kind = "journal";
    check_journal(path, bytes, repair, report);
  } else if (first_line.rfind("scaltool-runcache|", 0) == 0) {
    report.kind = "cache";
    check_cache(path, bytes, repair, report);
  } else {
    report.fatal = true;
    add(report, "unknown-format",
        "header line is not a scaltool artifact: " +
            first_line.substr(0, 64));
  }
  return report;
}

}  // namespace scaltool
