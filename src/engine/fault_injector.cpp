#include "engine/fault_injector.hpp"

#include <signal.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "runner/archive.hpp"

namespace scaltool {

namespace {

// Kind tags keep the per-(key, attempt) draws of different fault kinds
// independent of each other.
constexpr std::uint64_t kTagTransient = 0x7472616e7369ULL;  // "transi"
constexpr std::uint64_t kTagPermanent = 0x7065726d616eULL;  // "perman"
constexpr std::uint64_t kTagStall = 0x7374616c6cULL;        // "stall"
constexpr std::uint64_t kTagPerturb = 0x70657274ULL;        // "pert"
constexpr std::uint64_t kTagDrop = 0x64726f70ULL;           // "drop"
constexpr std::uint64_t kTagCorrupt = 0x636f7272ULL;        // "corr"

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double rate_field(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  ST_CHECK_MSG(!value.empty() && pos == value.size() && v >= 0.0 && v <= 1.0,
               "fault plan: " << key << "=" << value
                              << " is not a rate in [0, 1]");
  return v;
}

std::uint64_t u64_field(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  ST_CHECK_MSG(!value.empty() && value.find('-') == std::string::npos &&
                   pos == value.size(),
               "fault plan: " << key << "=" << value
                              << " is not an unsigned integer");
  return v;
}

int int_field(const std::string& key, const std::string& value, int min) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  ST_CHECK_MSG(!value.empty() && pos == value.size() && v >= min,
               "fault plan: " << key << "=" << value
                              << " is not an integer >= " << min);
  return v;
}

/// Tallies an injected fault of one kind in the obs registry, alongside
/// the injector's own atomic counts (which always run, telemetry or not).
void count_fault(const char* kind) {
  obs::MetricRegistry::instance()
      .counter(std::string("fault.") + kind)
      .add();
}

}  // namespace

bool FaultPlan::enabled() const {
  return transient_rate > 0.0 || permanent_rate > 0.0 || stall_rate > 0.0 ||
         perturb_rate > 0.0 || drop_rate > 0.0 ||
         cache_corrupt_rate > 0.0 || crash_at_run > 0 || io.enabled();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    ST_CHECK_MSG(eq != std::string::npos && eq > 0,
                 "fault plan: expected key=value, got \"" << item << "\"");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = u64_field(key, value);
    } else if (key == "transient") {
      plan.transient_rate = rate_field(key, value);
    } else if (key == "permanent") {
      plan.permanent_rate = rate_field(key, value);
    } else if (key == "stall") {
      plan.stall_rate = rate_field(key, value);
    } else if (key == "stall-ms") {
      plan.stall_ms = int_field(key, value, 0);
    } else if (key == "perturb") {
      plan.perturb_rate = rate_field(key, value);
    } else if (key == "perturb-mag") {
      plan.perturb_magnitude = rate_field(key, value);
    } else if (key == "drop") {
      plan.drop_rate = rate_field(key, value);
    } else if (key == "cache-corrupt") {
      plan.cache_corrupt_rate = rate_field(key, value);
    } else if (key == "crash") {
      plan.crash_at_run = int_field(key, value, 1);
    } else if (key == "target") {
      plan.target = value;
    } else if (key == "target-procs") {
      plan.target_procs = int_field(key, value, 0);
    } else if (key == "target-bytes") {
      plan.target_bytes = static_cast<std::size_t>(u64_field(key, value));
    } else if (key == "enospc") {
      plan.io.enospc_at = u64_field(key, value);
    } else if (key == "eio") {
      plan.io.eio_at = u64_field(key, value);
    } else if (key == "short-write") {
      plan.io.short_write_at = u64_field(key, value);
    } else if (key == "torn-rename") {
      plan.io.torn_rename_at = u64_field(key, value);
    } else if (key == "fsync-drop") {
      plan.io.fsync_drop_at = u64_field(key, value);
    } else if (key == "emfile") {
      plan.io.emfile_at = u64_field(key, value);
    } else {
      ST_CHECK_MSG(false, "fault plan: unknown key \"" << key
                          << "\" (see scaltool --help)");
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (transient_rate > 0.0) os << " transient=" << transient_rate;
  if (permanent_rate > 0.0) os << " permanent=" << permanent_rate;
  if (stall_rate > 0.0)
    os << " stall=" << stall_rate << " (" << stall_ms << " ms)";
  if (perturb_rate > 0.0)
    os << " perturb=" << perturb_rate << " (mag " << perturb_magnitude << ")";
  if (drop_rate > 0.0) os << " drop=" << drop_rate;
  if (cache_corrupt_rate > 0.0) os << " cache-corrupt=" << cache_corrupt_rate;
  if (crash_at_run > 0) os << " crash=" << crash_at_run;
  if (!target.empty()) os << " target=" << target;
  if (target_procs > 0) os << " target-procs=" << target_procs;
  if (target_bytes > 0) os << " target-bytes=" << target_bytes;
  if (io.enabled()) os << ' ' << io.describe();
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

bool FaultInjector::applies_to(const RunSpec& spec) const {
  if (!plan_.target.empty() &&
      spec.workload.find(plan_.target) == std::string::npos)
    return false;
  if (plan_.target_procs > 0 && spec.num_procs != plan_.target_procs)
    return false;
  if (plan_.target_bytes > 0 && spec.dataset_bytes != plan_.target_bytes)
    return false;
  return true;
}

double FaultInjector::draw(std::uint64_t key, int attempt,
                           std::uint64_t tag) const {
  std::uint64_t z = mix64(plan_.seed ^ tag);
  z = mix64(z ^ key);
  z = mix64(z ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool FaultInjector::permanent_fault(std::uint64_t key, int attempt) const {
  if (plan_.permanent_rate <= 0.0) return false;
  const bool hit = draw(key, 0, kTagPermanent) < plan_.permanent_rate;
  if (hit && attempt == 0) {
    ++permanent_;
    count_fault("permanent");
  }
  return hit;
}

bool FaultInjector::transient_fault(std::uint64_t key, int attempt) const {
  if (plan_.transient_rate <= 0.0) return false;
  const bool hit = draw(key, attempt, kTagTransient) < plan_.transient_rate;
  if (hit) {
    ++transient_;
    count_fault("transient");
  }
  return hit;
}

int FaultInjector::stall_ms(std::uint64_t key, int attempt) const {
  if (plan_.stall_rate <= 0.0 || plan_.stall_ms <= 0) return 0;
  if (draw(key, attempt, kTagStall) >= plan_.stall_rate) return 0;
  ++stalls_;
  count_fault("stall");
  return plan_.stall_ms;
}

std::string FaultInjector::perturb(std::uint64_t key,
                                   JobOutcome& outcome) const {
  std::ostringstream what;
  if (plan_.perturb_rate > 0.0 &&
      draw(key, 0, kTagPerturb) < plan_.perturb_rate) {
    // A noisy reading scales the cycle count (and the quantities derived
    // from it) by 1 + eps, eps uniform in [-mag, +mag].
    const double eps = (2.0 * draw(key, 1, kTagPerturb) - 1.0) *
                       plan_.perturb_magnitude;
    DerivedMetrics& d = outcome.record.metrics;
    d.cpi *= 1.0 + eps;
    d.cycles *= 1.0 + eps;
    outcome.record.execution_cycles *= 1.0 + eps;
    ++perturbed_;
    count_fault("perturb");
    what << "counters perturbed by " << 100.0 * eps << "%";
  }
  if (plan_.drop_rate > 0.0 && draw(key, 0, kTagDrop) < plan_.drop_rate) {
    // A multiplexed counter group is lost: the cache-hierarchy events of
    // this run read zero, as a real dropped perfex group would.
    DerivedMetrics& d = outcome.record.metrics;
    d.h2 = 0.0;
    d.hm = 0.0;
    ++dropped_;
    count_fault("drop");
    if (what.tellp() > 0) what << "; ";
    what << "cache-event counter group dropped";
  }
  return what.str();
}

void FaultInjector::run_boundary() const {
  if (plan_.crash_at_run <= 0) return;
  // Deterministic by construction: the engine calls this once per
  // executed run, after the run was journaled, so "crash=N" dies with
  // exactly N completed runs on disk whatever the worker count.
  if (run_boundaries_.fetch_add(1) + 1 == plan_.crash_at_run) {
    count_fault("crash");
    ::kill(::getpid(), SIGKILL);
  }
}

std::size_t FaultInjector::corrupt_cache_file(const std::string& path) const {
  if (plan_.cache_corrupt_rate <= 0.0) return 0;
  std::vector<std::string> lines;
  {
    std::ifstream is(path);
    if (!is.good()) return 0;
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
  }
  std::size_t corrupted = 0;
  std::uint64_t entry_index = 0;
  for (std::string& line : lines) {
    if (line.rfind("ENTRY|", 0) != 0) continue;
    ++entry_index;
    if (draw(entry_index, 0, kTagCorrupt) >= plan_.cache_corrupt_rate)
      continue;
    // Garble a byte inside the entry's payload (past the tag) so the
    // loader's per-entry tolerance is what gets exercised.
    const std::size_t pos =
        6 + static_cast<std::size_t>(draw(entry_index, 1, kTagCorrupt) *
                                     static_cast<double>(line.size() - 6));
    line[std::min(pos, line.size() - 1)] = '#';
    ++corrupted;
  }
  if (corrupted > 0) {
    obs::MetricRegistry::instance()
        .counter("fault.cache_corrupt")
        .add(corrupted);
    std::ofstream os(path, std::ios::trunc);
    ST_CHECK_MSG(os.good(), "cannot rewrite " << path << " for corruption");
    for (const std::string& line : lines) os << line << '\n';
  }
  return corrupted;
}

FaultCounts FaultInjector::counts() const {
  FaultCounts c;
  c.transient = transient_.load();
  c.permanent = permanent_.load();
  c.stalls = stalls_.load();
  c.perturbed = perturbed_.load();
  c.dropped = dropped_.load();
  return c;
}

}  // namespace scaltool
