// Per-campaign execution metrics.
//
// The engine reports what the scheduler actually did — how many jobs ran
// on the simulator, how many the run cache served, how well the workers
// were utilized — so a user can verify claims like "a warm analyze
// performs zero simulator runs" directly from the CLI output.
#pragma once

#include <cstddef>
#include <string>

#include "common/table.hpp"

namespace scaltool {

struct EngineStats {
  int workers = 1;
  std::size_t jobs_total = 0;
  std::size_t jobs_run = 0;     ///< executed on the simulator
  std::size_t jobs_cached = 0;  ///< served from the run cache
  std::size_t jobs_failed = 0;
  std::size_t jobs_quarantined = 0;  ///< permanently failing, kept-going past
  /// Outcomes seeded from the write-ahead journal on --resume; these runs
  /// were never re-simulated (the crash-recovery proof reads this).
  std::size_t jobs_replayed = 0;
  /// Grid points the adaptive planner deliberately left unexecuted (the
  /// job-selection mask). Skipped jobs never touch the simulator, cache
  /// or journal; with them the accounting identity is
  /// total = run + cached + replayed + quarantined + planned_skipped.
  std::size_t planned_skipped = 0;
  /// Attempts the per-run watchdog cancelled (--run-timeout-ms).
  std::size_t watchdog_timeouts = 0;
  std::size_t attempts = 0;          ///< simulator attempts, incl. retries
  std::size_t retries = 0;           ///< attempts beyond each job's first
  std::size_t faults_injected = 0;   ///< by the fault injector, all kinds
  double wall_seconds = 0.0;  ///< whole campaign, plan to join
  double busy_seconds = 0.0;  ///< summed per-job execution time
  std::size_t cache_entries_loaded = 0;   ///< from the cache file, at open
  std::size_t cache_entries_corrupt = 0;  ///< skipped as corrupt, at open
  /// Corrupt or truncated cache entries the campaign recovered from by
  /// re-running the job instead of aborting.
  std::size_t cache_recovery_events = 0;

  /// busy / (wall x workers), clamped to [0, 1]. Degenerate cases are
  /// well-defined: no workers means no utilization (0); a campaign whose
  /// wall clock rounded to zero was fully busy (1) if any work ran and
  /// idle (0) otherwise.
  double utilization() const;

  /// jobs_cached over the jobs that could have hit the cache (planner-
  /// skipped jobs never ask it); 0 when nothing was eligible.
  double cache_hit_rate() const;

  /// (jobs_total − quarantined) / jobs_total: how much of the matrix
  /// actually completed (1 when the campaign was empty — nothing missing).
  double completed_fraction() const;
};

/// One-row summary table (common/table rendering).
Table engine_stats_table(const EngineStats& stats);

/// Compact banner line: "engine: 17 jobs (4 run, 13 cached, 0 failed) ...".
std::string engine_stats_line(const EngineStats& stats);

/// Mirrors the stats into the obs MetricRegistry (`engine.*` counters and
/// gauges), overwriting whatever a previous campaign published. The CLI
/// banner and the `--metrics-out` export both read from this one struct,
/// so they can never disagree. No-op while telemetry is disabled.
void publish_engine_stats(const EngineStats& stats);

}  // namespace scaltool
