#include "engine/thread_pool.hpp"

#include <utility>

#include "common/monotime.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace scaltool {

ThreadPool::ThreadPool(int num_threads, std::size_t max_queued) {
  ST_CHECK_MSG(num_threads >= 1, "a thread pool needs at least one worker");
  max_queued_ = max_queued == 0
                    ? 2 * static_cast<std::size_t>(num_threads)
                    : max_queued;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  queue_changed_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> call) {
  {
    // Registered once; the references stay valid across registry resets.
    static obs::Histogram& submit_wait =
        obs::MetricRegistry::instance().histogram("pool.submit_wait_seconds");
    static obs::Counter& submitted =
        obs::MetricRegistry::instance().counter("pool.tasks_submitted");
    std::unique_lock<std::mutex> lock(mu_);
    if (obs::enabled()) {
      // Backpressure visibility: how long producers block on a full queue.
      const Stopwatch wait;
      queue_changed_.wait(lock, [this] {
        return shutting_down_ || queue_.size() < max_queued_;
      });
      submit_wait.observe(wait.seconds());
    } else {
      queue_changed_.wait(lock, [this] {
        return shutting_down_ || queue_.size() < max_queued_;
      });
    }
    ST_CHECK_MSG(!shutting_down_, "submit on a shutting-down thread pool");
    submitted.add();
    queue_.push_back(std::move(call));
  }
  // One condition variable serves workers and blocked producers alike, so
  // every transition broadcasts.
  queue_changed_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> call;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_changed_.wait(lock,
                          [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      call = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_changed_.notify_all();
    static obs::Counter& executed =
        obs::MetricRegistry::instance().counter("pool.tasks_executed");
    // The pool.task span is recorded by the submit() wrapper (it runs
    // under the submitter's trace context); here we only count.
    call();
    executed.add();
  }
}

}  // namespace scaltool
