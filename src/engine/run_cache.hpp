// Persistent memoization of measurement runs.
//
// Every job of a campaign is a pure function of (workload name, data-set
// size, processor count, machine configuration, iteration count): the
// simulator is deterministic. The cache keys each job by a content hash of
// exactly those ingredients and stores its counter record plus the
// validation side-band, so re-collecting an identical matrix — a warm
// `analyze`, a figure bench rerun — performs zero simulator runs.
//
// Persistence reuses the runner/archive record format: a versioned header
// followed by ENTRY / RUN / VALID line groups. Loading is tolerant at
// entry granularity: a truncated, garbled or stale entry is skipped (and
// counted) so the campaign simply re-runs that one job instead of
// aborting; a file with the wrong magic or version is ignored wholesale.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "machine/machine_config.hpp"
#include "runner/runner.hpp"

namespace scaltool {

/// Content hash identifying one run. `config.num_procs` is ignored (the
/// spec carries the per-run count); everything else that can change a
/// counter value participates.
std::uint64_t job_key_hash(const RunSpec& spec, const MachineConfig& config,
                           int iterations);

/// Per-job RNG seed: a splitmix64 mix of the configured base seed and the
/// job key, so every job owns an independent stream whose value does not
/// depend on worker count or completion order.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t key_hash);

class RunCache {
 public:
  /// In-memory only.
  RunCache() = default;

  /// Archive-backed: loads `path` if it exists (tolerantly), and save()
  /// rewrites it. An empty path degrades to in-memory only.
  explicit RunCache(std::string path);

  const std::string& path() const { return path_; }

  std::size_t size() const;
  /// Entries successfully loaded from disk at construction.
  std::size_t loaded_entries() const;
  /// Corrupt entries (or an unreadable whole file) skipped at load.
  std::size_t corrupt_entries() const;
  /// Lifetime find() hits/misses and insert() calls. For a cache shared
  /// across campaigns (the analysis service) inserts count the distinct
  /// simulator runs actually performed and hits the runs replayed.
  std::uint64_t find_hits() const;
  std::uint64_t find_misses() const;
  std::uint64_t inserts() const;

  /// Entries inserted since the last save() — how far the on-disk file
  /// lags the in-memory state (the serve `health` verb reports this as
  /// journal lag). Always 0 for an in-memory cache, which has no disk
  /// state to lag.
  std::uint64_t unsaved() const;

  /// Cache lookup. Misses when the key is absent, when the stored
  /// descriptor disagrees with `spec` (hash collision or stale entry), or
  /// when `spec.want_validation` and the entry has no side-band.
  std::optional<JobOutcome> find(std::uint64_t key, const RunSpec& spec) const;

  /// Inserts or overwrites. `has_validation` marks the side-band as real.
  void insert(std::uint64_t key, const RunSpec& spec,
              const JobOutcome& outcome, bool has_validation = true);

  /// Rewrites the backing file (no-op without a path). Writes a temp file
  /// first so a crash never leaves a half-written cache behind, and runs
  /// under an advisory flock on `<path>.lock` with a merge of the current
  /// on-disk entries, so concurrent processes sharing one cache file
  /// union their work instead of the last writer erasing the first's.
  /// Degrades instead of throwing on storage trouble: a failed flock or a
  /// failed write keeps the entries in memory (unsaved() still counts
  /// them), records a provenance note readable via save_note(), and
  /// bumps `cache.save_skipped_lock` / `cache.save_failed` — the cache is
  /// an optimization, and must never sink a campaign whose results are
  /// already journaled.
  void save() const;

  /// Provenance of the most recent save(): empty after a clean save, a
  /// human-readable degradation note ("memory-only", "save failed")
  /// otherwise.
  std::string save_note() const {
    std::lock_guard<std::mutex> lock(mu_);
    return save_note_;
  }

 private:
  struct Entry {
    RunSpec spec;  ///< descriptor, for collision checks and debugging
    JobOutcome outcome;
    bool has_validation = false;
  };

  /// Tolerant parse of `path` into `into` (existing keys overwritten).
  /// `loaded`/`corrupt` tally per-entry outcomes when non-null.
  static void merge_from_disk(const std::string& path,
                              std::map<std::uint64_t, Entry>& into,
                              std::size_t* loaded, std::size_t* corrupt);

  void load();

  mutable std::mutex mu_;
  std::string path_;
  std::map<std::uint64_t, Entry> entries_;
  std::size_t loaded_ = 0;
  std::size_t corrupt_ = 0;
  mutable std::uint64_t find_hits_ = 0;   ///< find() is logically const
  mutable std::uint64_t find_misses_ = 0;
  std::uint64_t inserts_ = 0;
  mutable std::uint64_t unsaved_ = 0;  ///< save() is logically const too
  mutable std::string save_note_;      ///< last save's degradation note
};

}  // namespace scaltool
