// Write-ahead journal of a measurement campaign (DESIGN.md §11).
//
// A campaign's expensive artifact is its completed runs, yet until now a
// SIGKILL mid-campaign threw every one of them away. The journal fixes
// that: before a campaign starts it records the matrix it is about to
// collect (a content signature plus META line), and every completed run is
// appended as one self-contained, CRC-guarded record the moment its
// outcome exists. A later `collect --resume` replays the journal, seeds
// the finished outcomes, and only simulates what is missing — producing an
// archive byte-identical to an uninterrupted campaign.
//
// Format: line-oriented like every other scaltool artifact. A header
//
//   scaltool-journal|1|<matrix signature, hex>
//
// followed by records of the form `C|<crc32 hex8>|<payload>` where the
// CRC covers exactly the payload bytes. Payloads:
//
//   META|<app>|<s0>|<l2_bytes>|<planned jobs>
//   RUN|<job index>|<key hex>|<has_validation>|R|<run record>[|VALID|...]
//   COMMIT|<archive path>|<archive bytes>|<archive crc32 hex8>
//
// Replay semantics are the robustness contract the hostile-input tests
// pin: a wrong magic or version is a named CheckError (the file is not
// ours to guess at), while a torn tail, a flipped bit or a short write
// truncates the journal to its longest valid prefix — every record before
// the damage is recovered, everything after is dropped and counted,
// and the campaign simply re-runs the lost jobs. Duplicated records
// (a crash between write and index update in some future format) keep
// their first occurrence. Never UB on any input.
//
// Durability: the header and the COMMIT marker are fsync'd (they gate
// correctness decisions), RUN records are plain O_APPEND writes — they
// survive process death, which is the failure the crash harness injects,
// and keep the hot-path overhead inside the ≤5% budget
// (bench_crash_recovery gates this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/crc32.hpp"  // crc32() moved to common for the SUM footers
#include "runner/runner.hpp"

namespace scaltool {

/// Content signature of a measurement matrix: the app, sizes and every
/// job's content key (which folds in the machine configuration and the
/// iteration count). Two campaigns share a signature exactly when their
/// journals are interchangeable.
std::uint64_t matrix_signature(const MatrixPlan& plan,
                               const MachineConfig& base_config,
                               int iterations);

/// Appends records to a journal file. Thread-safe: the engine's workers
/// append concurrently, and each record is a single O_APPEND write so
/// lines never interleave.
class JournalWriter {
 public:
  /// Opens (creating if needed) the journal at `path`. With `append`
  /// false the file is truncated — a fresh campaign; with true, records
  /// are added after whatever a previous (possibly killed) process left.
  JournalWriter(std::string path, bool append);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  const std::string& path() const { return path_; }

  /// Writes the header and META record, then fsyncs: once begin()
  /// returns, a resume can at least identify the matrix.
  void begin(std::uint64_t signature, const MatrixPlan& plan);

  /// Appends one completed run. Not fsync'd (see file comment).
  void append_run(std::size_t job, std::uint64_t key,
                  const JobOutcome& outcome, bool has_validation);

  /// Appends the two-phase archive commit marker, then fsyncs. A journal
  /// whose replay carries a COMMIT says the archive at `archive_path`
  /// was staged completely with the given size and CRC.
  void append_commit(const std::string& archive_path, std::size_t bytes,
                     std::uint32_t archive_crc);

 private:
  void write_line(const std::string& line);
  void write_record(const std::string& payload);
  void sync();

  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
};

/// One run recovered from the journal.
struct ReplayedRun {
  std::uint64_t key = 0;
  JobOutcome outcome;
  bool has_validation = false;
};

/// Everything a valid journal prefix said.
struct JournalReplay {
  std::uint64_t signature = 0;

  // META
  std::string app;
  std::size_t s0 = 0;
  std::size_t l2_bytes = 0;
  std::size_t jobs_planned = 0;

  /// Completed runs by plan index (first occurrence wins).
  std::map<std::size_t, ReplayedRun> runs;

  // COMMIT
  bool committed = false;
  std::string archive_path;
  std::size_t archive_bytes = 0;
  std::uint32_t archive_crc = 0;

  // Replay accounting (what the resume banner and the tests report).
  std::size_t records_ok = 0;       ///< records recovered
  std::size_t records_dropped = 0;  ///< lines past the valid prefix
  std::size_t duplicates = 0;       ///< re-appended records ignored

  /// Byte length of the valid prefix (header + recovered records). A
  /// resume truncates the journal here before appending, so a torn tail
  /// record can never sit mid-file and shadow later appends.
  std::size_t valid_prefix_bytes = 0;
};

/// Replays the journal at `path`. CheckError when the file cannot be
/// read, is not a scaltool journal, or carries an unknown format version;
/// any damage *after* the header truncates to the longest valid prefix
/// instead (see the file comment).
JournalReplay replay_journal(const std::string& path);

}  // namespace scaltool
