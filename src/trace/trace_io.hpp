// Address-trace record and replay.
//
// The paper's related work contrasts execution-driven simulation with
// trace-driven front ends like MINT [23]. This module provides both
// directions for our simulator:
//
//   - RecordingWorkload wraps any Workload and captures the exact stream
//     of ProcContext operations (loads, stores, compute, critical
//     sections, regions) each processor issues in each phase;
//   - TraceWorkload replays a captured trace as a Workload, with no
//     application logic — on the same machine configuration it reproduces
//     the original run's counters bit for bit (asserted in tests);
//   - save_trace/load_trace persist traces as plain text, so traces from
//     external tools can be imported by writing the same format.
//
// A trace is specific to the (data-set size, processor count) it was
// recorded at; replay validates both.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hpp"

namespace scaltool {

/// One recorded ProcContext operation.
struct TraceOp {
  enum class Kind : unsigned char {
    kLoad,
    kStore,
    kCompute,
    kCritical,
    kRegionBegin,
    kRegionEnd,
  };
  Kind kind = Kind::kLoad;
  Addr addr = 0;        ///< kLoad/kStore
  double value = 0.0;   ///< kCompute: count; kCritical: instructions
  int lock_id = 0;      ///< kCritical
  std::string name;     ///< kRegionBegin
};

/// One recorded allocation: size plus the base address the deterministic
/// allocator produced (replay verifies it gets the same layout).
struct TraceAlloc {
  std::size_t bytes = 0;
  Addr base = 0;
  std::string label;
};

/// A complete captured run.
struct Trace {
  std::string workload;  ///< name of the recorded workload
  ParallelismModel model = ParallelismModel::kMP;
  std::size_t dataset_bytes = 0;
  int num_procs = 0;
  int num_phases = 0;
  std::vector<TraceAlloc> allocations;
  /// ops[phase * num_procs + proc]
  std::vector<std::vector<TraceOp>> ops;

  std::size_t total_ops() const;
  /// Structural sanity (dimensions, region nesting); throws CheckError.
  void validate() const;
};

/// Wraps a workload and captures everything it does. Run it once through
/// DsmMachine::run, then take the trace.
class RecordingWorkload final : public Workload {
 public:
  explicit RecordingWorkload(std::unique_ptr<Workload> inner);

  std::string name() const override;
  ParallelismModel parallelism_model() const override;
  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override;
  void run_phase(int phase, ProcContext& ctx) override;

  /// The captured trace (valid after a completed run).
  const Trace& trace() const { return trace_; }
  Trace take_trace() { return std::move(trace_); }

 private:
  class RecordingCtx;
  std::unique_ptr<Workload> inner_;
  Trace trace_;
};

/// Replays a trace. The machine must be configured with the trace's
/// processor count, and the run's WorkloadParams::dataset_bytes must match
/// the recorded size (checked in setup).
class TraceWorkload final : public Workload {
 public:
  explicit TraceWorkload(Trace trace);

  std::string name() const override { return trace_.workload + ":replay"; }
  ParallelismModel parallelism_model() const override {
    return trace_.model;
  }
  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override { return trace_.num_phases; }
  void run_phase(int phase, ProcContext& ctx) override;

 private:
  Trace trace_;
};

void write_trace(const Trace& trace, std::ostream& os);
Trace read_trace(std::istream& is);
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

}  // namespace scaltool
