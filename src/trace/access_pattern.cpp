#include "trace/access_pattern.hpp"

#include "common/check.hpp"

namespace scaltool {

BlockRange block_range(std::size_t total, int nprocs, int p) {
  ST_CHECK(nprocs >= 1);
  ST_CHECK(p >= 0 && p < nprocs);
  const std::size_t n = static_cast<std::size_t>(nprocs);
  const std::size_t pi = static_cast<std::size_t>(p);
  const std::size_t base = total / n;
  const std::size_t rem = total % n;
  BlockRange r;
  r.begin = pi * base + std::min(pi, rem);
  r.end = r.begin + base + (pi < rem ? 1 : 0);
  return r;
}

void stream_read(ProcContext& ctx, Addr base, std::size_t begin,
                 std::size_t count, std::size_t elem_bytes,
                 double flops_per_elem) {
  for (std::size_t i = begin; i < begin + count; ++i) {
    ctx.load(base + static_cast<Addr>(i * elem_bytes));
    if (flops_per_elem > 0.0) ctx.compute(flops_per_elem);
  }
}

void stream_write(ProcContext& ctx, Addr base, std::size_t begin,
                  std::size_t count, std::size_t elem_bytes,
                  double flops_per_elem, bool rmw) {
  for (std::size_t i = begin; i < begin + count; ++i) {
    const Addr a = base + static_cast<Addr>(i * elem_bytes);
    if (rmw) ctx.load(a);
    if (flops_per_elem > 0.0) ctx.compute(flops_per_elem);
    ctx.store(a);
  }
}

void axpy(ProcContext& ctx, Addr x, Addr y, std::size_t begin,
          std::size_t count, std::size_t elem_bytes) {
  for (std::size_t i = begin; i < begin + count; ++i) {
    const Addr off = static_cast<Addr>(i * elem_bytes);
    ctx.load(x + off);
    ctx.load(y + off);
    ctx.compute(2.0);
    ctx.store(y + off);
  }
}

void dot_partial(ProcContext& ctx, Addr x, Addr y, std::size_t begin,
                 std::size_t count, std::size_t elem_bytes,
                 Addr partial_slot) {
  for (std::size_t i = begin; i < begin + count; ++i) {
    const Addr off = static_cast<Addr>(i * elem_bytes);
    ctx.load(x + off);
    ctx.load(y + off);
    ctx.compute(2.0);
  }
  ctx.store(partial_slot);
}

void stencil3(ProcContext& ctx, Addr in, Addr out, std::size_t begin,
              std::size_t count, std::size_t total, std::size_t elem_bytes,
              double flops_per_elem) {
  ST_CHECK(begin + count <= total);
  for (std::size_t i = begin; i < begin + count; ++i) {
    const std::size_t lo = i == 0 ? 0 : i - 1;
    const std::size_t hi = i + 1 == total ? i : i + 1;
    ctx.load(in + static_cast<Addr>(lo * elem_bytes));
    ctx.load(in + static_cast<Addr>(i * elem_bytes));
    ctx.load(in + static_cast<Addr>(hi * elem_bytes));
    ctx.compute(flops_per_elem);
    ctx.store(out + static_cast<Addr>(i * elem_bytes));
  }
}

}  // namespace scaltool
