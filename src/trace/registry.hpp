// Name → factory registry for workloads, so examples and bench binaries can
// select applications by name.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hpp"

namespace scaltool {

class WorkloadRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Workload>()>;

  /// The process-wide registry instance.
  static WorkloadRegistry& instance();

  /// Registers a factory; re-registration under the same name is an error.
  void register_workload(const std::string& name, Factory factory);

  /// Creates a fresh workload instance; throws CheckError for unknown names.
  std::unique_ptr<Workload> create(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace scaltool
