// Name → factory registry for workloads, so examples and bench binaries can
// select applications by name.
//
// The registry is shared process-wide state and the campaign engine
// resolves workloads from concurrent jobs, so every member is guarded by a
// mutex; lookups hand out factory copies (shared ownership of the callable)
// and invoke them outside the lock.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/workload.hpp"

namespace scaltool {

class WorkloadRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Workload>()>;

  /// The process-wide registry instance.
  static WorkloadRegistry& instance();

  /// Registers a factory; re-registration under the same name is an error.
  void register_workload(const std::string& name, Factory factory);

  /// Creates a fresh workload instance; throws CheckError for unknown names.
  std::unique_ptr<Workload> create(const std::string& name) const;

  /// Copy of the named factory (throws for unknown names). The copy owns
  /// its state, so callers may hold and invoke it without the registry lock.
  Factory factory(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace scaltool
