// Access-pattern helpers shared by the synthetic applications.
//
// These express the common loop shapes of the paper's scientific codes —
// block-scheduled sweeps over arrays ("block scheduling to schedule
// iterations", Sec. 3), stencil reads with neighbour offsets, and
// reductions — in terms of ProcContext loads/stores.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "trace/workload.hpp"

namespace scaltool {

/// Element range [begin, end) of processor `p` under block scheduling of
/// `total` iterations across `nprocs` processors (first-touch friendly).
struct BlockRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

BlockRange block_range(std::size_t total, int nprocs, int p);

/// Streaming read of `count` elements of `elem_bytes` starting at `base`,
/// charging `flops_per_elem` compute instructions per element.
void stream_read(ProcContext& ctx, Addr base, std::size_t begin,
                 std::size_t count, std::size_t elem_bytes,
                 double flops_per_elem);

/// Streaming write (read-modify-write when `rmw` is true).
void stream_write(ProcContext& ctx, Addr base, std::size_t begin,
                  std::size_t count, std::size_t elem_bytes,
                  double flops_per_elem, bool rmw = false);

/// y[i] = a*x[i] + y[i] over the range: 2 loads, 1 store, 2 flops per elem.
void axpy(ProcContext& ctx, Addr x, Addr y, std::size_t begin,
          std::size_t count, std::size_t elem_bytes);

/// Local partial dot product over the range: 2 loads + 2 flops per element,
/// one store of the partial at `partial_slot`.
void dot_partial(ProcContext& ctx, Addr x, Addr y, std::size_t begin,
                 std::size_t count, std::size_t elem_bytes,
                 Addr partial_slot);

/// 1-D 3-point stencil: out[i] = f(in[i-1], in[i], in[i+1]) over the range,
/// clamped at the array ends ([0, total)). 3 loads, 1 store,
/// `flops_per_elem` compute instructions (default 4).
void stencil3(ProcContext& ctx, Addr in, Addr out, std::size_t begin,
              std::size_t count, std::size_t total, std::size_t elem_bytes,
              double flops_per_elem = 4.0);

}  // namespace scaltool
