#include "trace/registry.hpp"

#include "common/check.hpp"

namespace scaltool {

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::register_workload(const std::string& name,
                                         Factory factory) {
  ST_CHECK_MSG(!factories_.contains(name),
               "workload already registered: " << name);
  ST_CHECK(factory != nullptr);
  factories_.emplace(name, std::move(factory));
}

std::unique_ptr<Workload> WorkloadRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  ST_CHECK_MSG(it != factories_.end(), "unknown workload: " << name);
  return it->second();
}

bool WorkloadRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace scaltool
