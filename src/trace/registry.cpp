#include "trace/registry.hpp"

#include <utility>

#include "common/check.hpp"

namespace scaltool {

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::register_workload(const std::string& name,
                                         Factory factory) {
  ST_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  ST_CHECK_MSG(!factories_.contains(name),
               "workload already registered: " << name);
  factories_.emplace(name, std::move(factory));
}

WorkloadRegistry::Factory WorkloadRegistry::factory(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = factories_.find(name);
  ST_CHECK_MSG(it != factories_.end(), "unknown workload: " << name);
  return it->second;
}

std::unique_ptr<Workload> WorkloadRegistry::create(
    const std::string& name) const {
  // The factory runs outside the lock: creating a workload may be slow and
  // must not serialize concurrent jobs.
  return factory(name)();
}

bool WorkloadRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.contains(name);
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace scaltool
