#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace scaltool {

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

std::size_t Trace::total_ops() const {
  std::size_t total = 0;
  for (const auto& chunk : ops) total += chunk.size();
  return total;
}

void Trace::validate() const {
  ST_CHECK_MSG(num_procs >= 1, "trace has no processors");
  ST_CHECK_MSG(num_phases >= 1, "trace has no phases");
  ST_CHECK_MSG(ops.size() == static_cast<std::size_t>(num_phases) *
                                 static_cast<std::size_t>(num_procs),
               "trace has " << ops.size() << " chunks, expected "
                            << num_phases * num_procs);
  for (const auto& chunk : ops) {
    int region_depth = 0;
    for (const TraceOp& op : chunk) {
      if (op.kind == TraceOp::Kind::kRegionBegin) ++region_depth;
      if (op.kind == TraceOp::Kind::kRegionEnd) --region_depth;
      ST_CHECK_MSG(region_depth >= 0 && region_depth <= 1,
                   "malformed region nesting in trace");
    }
    ST_CHECK_MSG(region_depth == 0, "trace chunk ends inside a region");
  }
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

class RecordingWorkload::RecordingCtx final : public ProcContext {
 public:
  RecordingCtx(ProcContext& inner, std::vector<TraceOp>& out)
      : inner_(inner), out_(out) {}

  ProcId proc() const override { return inner_.proc(); }
  int num_procs() const override { return inner_.num_procs(); }

  void load(Addr addr) override {
    out_.push_back({TraceOp::Kind::kLoad, addr, 0.0, 0, {}});
    inner_.load(addr);
  }
  void store(Addr addr) override {
    out_.push_back({TraceOp::Kind::kStore, addr, 0.0, 0, {}});
    inner_.store(addr);
  }
  void compute(double count) override {
    out_.push_back({TraceOp::Kind::kCompute, 0, count, 0, {}});
    inner_.compute(count);
  }
  void critical_section(int lock_id, double instr) override {
    out_.push_back({TraceOp::Kind::kCritical, 0, instr, lock_id, {}});
    inner_.critical_section(lock_id, instr);
  }
  void begin_region(const std::string& name) override {
    out_.push_back({TraceOp::Kind::kRegionBegin, 0, 0.0, 0, name});
    inner_.begin_region(name);
  }
  void end_region() override {
    out_.push_back({TraceOp::Kind::kRegionEnd, 0, 0.0, 0, {}});
    inner_.end_region();
  }

 private:
  ProcContext& inner_;
  std::vector<TraceOp>& out_;
};

namespace {

/// AllocContext shim that records allocation sizes and bases.
class RecordingAlloc final : public AllocContext {
 public:
  RecordingAlloc(AllocContext& inner, std::vector<TraceAlloc>& out)
      : inner_(inner), out_(out) {}
  Addr allocate(std::size_t bytes, std::string label) override {
    const Addr base = inner_.allocate(bytes, label);
    out_.push_back({bytes, base, std::move(label)});
    return base;
  }

 private:
  AllocContext& inner_;
  std::vector<TraceAlloc>& out_;
};

}  // namespace

RecordingWorkload::RecordingWorkload(std::unique_ptr<Workload> inner)
    : inner_(std::move(inner)) {
  ST_CHECK(inner_ != nullptr);
}

std::string RecordingWorkload::name() const {
  return inner_->name() + ":recording";
}

ParallelismModel RecordingWorkload::parallelism_model() const {
  return inner_->parallelism_model();
}

void RecordingWorkload::setup(AllocContext& alloc,
                              const WorkloadParams& params, int num_procs) {
  trace_ = Trace{};
  trace_.workload = inner_->name();
  trace_.model = inner_->parallelism_model();
  trace_.dataset_bytes = params.dataset_bytes;
  trace_.num_procs = num_procs;
  RecordingAlloc rec_alloc(alloc, trace_.allocations);
  inner_->setup(rec_alloc, params, num_procs);
  trace_.num_phases = inner_->num_phases();
  trace_.ops.assign(static_cast<std::size_t>(trace_.num_phases) *
                        static_cast<std::size_t>(num_procs),
                    {});
}

int RecordingWorkload::num_phases() const { return inner_->num_phases(); }

void RecordingWorkload::run_phase(int phase, ProcContext& ctx) {
  auto& chunk = trace_.ops[static_cast<std::size_t>(phase) *
                               static_cast<std::size_t>(trace_.num_procs) +
                           static_cast<std::size_t>(ctx.proc())];
  RecordingCtx recorder(ctx, chunk);
  inner_->run_phase(phase, recorder);
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

TraceWorkload::TraceWorkload(Trace trace) : trace_(std::move(trace)) {
  trace_.validate();
}

void TraceWorkload::setup(AllocContext& alloc, const WorkloadParams& params,
                          int num_procs) {
  ST_CHECK_MSG(num_procs == trace_.num_procs,
               "trace was recorded on " << trace_.num_procs
                                        << " processors, machine has "
                                        << num_procs);
  ST_CHECK_MSG(params.dataset_bytes == trace_.dataset_bytes,
               "trace was recorded at " << trace_.dataset_bytes
                                        << " bytes, run requests "
                                        << params.dataset_bytes);
  for (const TraceAlloc& a : trace_.allocations) {
    const Addr base = alloc.allocate(a.bytes, a.label + ":replay");
    ST_CHECK_MSG(base == a.base,
                 "replay allocator layout differs (got 0x"
                     << std::hex << base << ", trace has 0x" << a.base
                     << "); use the memory configuration the trace was "
                        "recorded with");
  }
}

void TraceWorkload::run_phase(int phase, ProcContext& ctx) {
  const auto& chunk =
      trace_.ops[static_cast<std::size_t>(phase) *
                     static_cast<std::size_t>(trace_.num_procs) +
                 static_cast<std::size_t>(ctx.proc())];
  for (const TraceOp& op : chunk) {
    switch (op.kind) {
      case TraceOp::Kind::kLoad: ctx.load(op.addr); break;
      case TraceOp::Kind::kStore: ctx.store(op.addr); break;
      case TraceOp::Kind::kCompute: ctx.compute(op.value); break;
      case TraceOp::Kind::kCritical:
        ctx.critical_section(op.lock_id, op.value);
        break;
      case TraceOp::Kind::kRegionBegin: ctx.begin_region(op.name); break;
      case TraceOp::Kind::kRegionEnd: ctx.end_region(); break;
    }
  }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

void write_trace(const Trace& trace, std::ostream& os) {
  trace.validate();
  os << "scaltool-trace|1|" << trace.workload << '|'
     << parallelism_model_name(trace.model) << '|' << trace.dataset_bytes
     << '|' << trace.num_procs << '|' << trace.num_phases << '\n';
  for (const TraceAlloc& a : trace.allocations)
    os << "A " << a.bytes << ' ' << a.base << ' ' << a.label << '\n';
  for (std::size_t chunk = 0; chunk < trace.ops.size(); ++chunk) {
    os << "P " << chunk << ' ' << trace.ops[chunk].size() << '\n';
    for (const TraceOp& op : trace.ops[chunk]) {
      switch (op.kind) {
        case TraceOp::Kind::kLoad: os << "L " << op.addr << '\n'; break;
        case TraceOp::Kind::kStore: os << "S " << op.addr << '\n'; break;
        case TraceOp::Kind::kCompute:
          os << "C " << op.value << '\n';
          break;
        case TraceOp::Kind::kCritical:
          os << "X " << op.lock_id << ' ' << op.value << '\n';
          break;
        case TraceOp::Kind::kRegionBegin:
          os << "RB " << op.name << '\n';
          break;
        case TraceOp::Kind::kRegionEnd: os << "RE\n"; break;
      }
    }
  }
}

Trace read_trace(std::istream& is) {
  std::string line;
  ST_CHECK_MSG(static_cast<bool>(std::getline(is, line)), "empty trace");
  Trace trace;
  {
    std::istringstream header(line);
    std::string field;
    auto next = [&] {
      ST_CHECK_MSG(static_cast<bool>(std::getline(header, field, '|')),
                   "truncated trace header");
      return field;
    };
    ST_CHECK_MSG(next() == "scaltool-trace", "not a scaltool trace");
    ST_CHECK_MSG(next() == "1", "unsupported trace version");
    trace.workload = next();
    const std::string model = next();
    if (model == "MP") {
      trace.model = ParallelismModel::kMP;
    } else if (model == "PCF") {
      trace.model = ParallelismModel::kPCF;
    } else {
      ST_CHECK_MSG(false, "unknown parallelism model: " << model);
    }
    trace.dataset_bytes = std::stoull(next());
    trace.num_procs = std::stoi(next());
    trace.num_phases = std::stoi(next());
  }
  trace.ops.assign(static_cast<std::size_t>(trace.num_phases) *
                       static_cast<std::size_t>(trace.num_procs),
                   {});
  std::vector<TraceOp>* chunk = nullptr;
  std::size_t remaining = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "A") {
      TraceAlloc a;
      ls >> a.bytes >> a.base;
      std::getline(ls, a.label);
      if (!a.label.empty() && a.label.front() == ' ')
        a.label.erase(a.label.begin());
      trace.allocations.push_back(a);
      continue;
    }
    if (tag == "P") {
      ST_CHECK_MSG(remaining == 0, "new chunk before the previous finished");
      std::size_t index = 0;
      ls >> index >> remaining;
      ST_CHECK_MSG(index < trace.ops.size(), "chunk index out of range");
      chunk = &trace.ops[index];
      chunk->reserve(remaining);
      continue;
    }
    ST_CHECK_MSG(chunk != nullptr && remaining > 0,
                 "op outside any chunk: " << line);
    TraceOp op;
    if (tag == "L" || tag == "S") {
      op.kind = tag == "L" ? TraceOp::Kind::kLoad : TraceOp::Kind::kStore;
      ls >> op.addr;
    } else if (tag == "C") {
      op.kind = TraceOp::Kind::kCompute;
      ls >> op.value;
    } else if (tag == "X") {
      op.kind = TraceOp::Kind::kCritical;
      ls >> op.lock_id >> op.value;
    } else if (tag == "RB") {
      op.kind = TraceOp::Kind::kRegionBegin;
      ls >> op.name;
    } else if (tag == "RE") {
      op.kind = TraceOp::Kind::kRegionEnd;
    } else {
      ST_CHECK_MSG(false, "unknown trace op tag: " << tag);
    }
    chunk->push_back(op);
    --remaining;
  }
  ST_CHECK_MSG(remaining == 0, "trace ends mid-chunk");
  trace.validate();
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  ST_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_trace(trace, os);
  os.flush();
  ST_CHECK_MSG(os.good(), "write to " << path << " failed");
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.good(), "cannot open " << path);
  return read_trace(is);
}

}  // namespace scaltool
