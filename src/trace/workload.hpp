// Workload abstraction: phased shared-memory programs.
//
// The paper's applications follow the MP / PCF models of parallelism
// (Sec. 3): parallel loops and sections separated by explicit or implicit
// barriers. A Workload is therefore a sequence of *phases*; in each phase
// every processor executes its slice (loads, stores, compute) through a
// ProcContext, and an implicit barrier closes the phase. Serial sections
// are phases where only one processor does work — the others spin at the
// barrier, which is exactly how the paper's load imbalance manifests.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/types.hpp"

namespace scaltool {

/// Run-shaping parameters. `dataset_bytes` is the paper's data-set size s;
/// the model sweeps it (s0, s0/2, s0/4, ...) while apps size their arrays
/// from it. `iterations` scales run length without changing the footprint.
struct WorkloadParams {
  std::size_t dataset_bytes = 256_KiB;
  int iterations = 3;
};

/// Allocation interface handed to Workload::setup.
class AllocContext {
 public:
  virtual ~AllocContext() = default;
  /// Allocates a named array in the simulated address space.
  virtual Addr allocate(std::size_t bytes, std::string label) = 0;
};

/// Per-processor execution interface for one phase. All costs (cache
/// behaviour, coherence, latency) are charged by the implementation.
class ProcContext {
 public:
  virtual ~ProcContext() = default;

  virtual ProcId proc() const = 0;
  virtual int num_procs() const = 0;

  /// One graduated load/store of the word at `addr`.
  virtual void load(Addr addr) = 0;
  virtual void store(Addr addr) = 0;

  /// `count` non-memory graduated instructions (ALU/FP/branch).
  virtual void compute(double count) = 0;

  /// A lock-protected critical section executing `instr` instructions.
  /// Contention against other processors' sections on the same lock is
  /// serialized by the machine. `lock_id` distinguishes independent locks.
  virtual void critical_section(int lock_id, double instr) = 0;

  /// Marks region boundaries for per-segment analysis ("these plots can be
  /// obtained ... for a segment of the application", Sec. 2.1).
  virtual void begin_region(const std::string& name) = 0;
  virtual void end_region() = 0;
};

/// Parallelism model of the source program (Table 4).
enum class ParallelismModel { kMP, kPCF };

const char* parallelism_model_name(ParallelismModel m);

/// A phased shared-memory application.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual ParallelismModel parallelism_model() const = 0;

  /// Allocates arrays and fixes the phase schedule for these parameters.
  /// Called exactly once before any run_phase.
  virtual void setup(AllocContext& alloc, const WorkloadParams& params,
                     int num_procs) = 0;

  /// Total number of phases (including initialization phases). An implicit
  /// barrier follows every phase.
  virtual int num_phases() const = 0;

  /// Executes processor `ctx.proc()`'s share of `phase`.
  virtual void run_phase(int phase, ProcContext& ctx) = 0;
};

using WorkloadFactory = std::unique_ptr<Workload> (*)();

}  // namespace scaltool
