#include "trace/workload.hpp"

namespace scaltool {

const char* parallelism_model_name(ParallelismModel m) {
  switch (m) {
    case ParallelismModel::kMP: return "MP";
    case ParallelismModel::kPCF: return "PCF";
  }
  return "?";
}

}  // namespace scaltool
