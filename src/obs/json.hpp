// Minimal JSON value, parser and string escaping.
//
// The telemetry exporters emit Chrome trace_event and metrics JSON; the
// `scaltool stats` subcommand, the observability tests and the analysis
// service's wire protocol read JSON back. This is a deliberately small
// recursive-descent parser for that loop — complete enough for any
// well-formed JSON document, with CheckError on malformed input — not a
// general serialization framework. Because the service feeds it untrusted
// bytes, the parser is hardened: nesting is capped (so deep input cannot
// blow the stack), duplicate object keys, malformed \u escapes and
// overflowing number literals are all rejected with CheckError.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace scaltool::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; CheckError when the kind does not match.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; CheckError when absent or not an object.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Throws CheckError on malformed input.
JsonValue json_parse(const std::string& text);

/// Escapes a string for embedding between JSON double quotes. Well-formed
/// UTF-8 passes through; invalid bytes (overlong encodings, surrogates,
/// stray continuation bytes) are escaped as \u00XX so the output always
/// re-parses — escaping never throws, whatever the input bytes.
std::string json_escape(const std::string& s);

/// Serializes a JsonValue back to compact JSON (no whitespace; object keys
/// in map order, so output is deterministic). Round-trips with json_parse.
std::string json_serialize(const JsonValue& value);

/// Formats a double as a JSON number token. Non-finite values (which JSON
/// cannot represent) become quoted strings, so output always parses.
std::string json_number(double v);

}  // namespace scaltool::obs
