#include "obs/metrics.hpp"

#include <pthread.h>

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace scaltool::obs {

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    seen += bucket_counts[i];
    if (seen >= target)
      return i < bounds.size() ? bounds[i] : max;  // overflow bucket: max
  }
  return max;
}

std::vector<double> Histogram::default_time_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_time_bounds() : std::move(bounds)),
      counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // min/max via CAS: contention is rare (observations are per job / per
  // run, not per simulated access).
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.bounds = bounds_;
  d.bucket_counts.reserve(counts_.size());
  for (const auto& c : counts_)
    d.bucket_counts.push_back(c.load(std::memory_order_relaxed));
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  if (d.count > 0) {
    d.min = min_.load(std::memory_order_relaxed);
    d.max = max_.load(std::memory_order_relaxed);
  }
  return d;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

HistogramData merge_histograms(const HistogramData& a, const HistogramData& b) {
  // An empty side (no observations, no frozen bounds) is the identity —
  // this is what makes the merge associative when some shards have not
  // yet observed a histogram the others have.
  if (a.count == 0 && a.bounds.empty()) return b;
  if (b.count == 0 && b.bounds.empty()) return a;
  ST_CHECK_MSG(a.bounds == b.bounds,
               "cannot merge histograms with different bucket bounds");
  HistogramData out = a;
  if (out.bucket_counts.size() < b.bucket_counts.size())
    out.bucket_counts.resize(b.bucket_counts.size(), 0);
  for (std::size_t i = 0; i < b.bucket_counts.size(); ++i)
    out.bucket_counts[i] += b.bucket_counts[i];
  out.count += b.count;
  out.sum += b.sum;
  // min/max carry no information on a count==0 side.
  if (a.count == 0) {
    out.min = b.min;
    out.max = b.max;
  } else if (b.count > 0) {
    out.min = std::min(a.min, b.min);
    out.max = std::max(a.max, b.max);
  }
  return out;
}

void merge_snapshot_into(MetricsSnapshot& acc, const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) acc.counters[name] += v;
  for (const auto& [name, v] : other.gauges) {
    const auto [it, inserted] = acc.gauges.emplace(name, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  for (const auto& [name, h] : other.histograms) {
    const auto it = acc.histograms.find(name);
    if (it == acc.histograms.end())
      acc.histograms.emplace(name, h);
    else
      it->second = merge_histograms(it->second, h);
  }
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps) {
  MetricsSnapshot acc;
  for (const MetricsSnapshot& snap : snaps) merge_snapshot_into(acc, snap);
  return acc;
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry registry;
  // The fleet supervisor forks worker processes from a threaded parent.
  // If another thread held the registry mutex at fork() the child would
  // inherit it locked and deadlock on its first metric; the classic
  // atfork dance (lock across the fork, unlock on both sides) makes the
  // registry fork-safe.
  static const int atfork_rc = ::pthread_atfork(
      [] { instance().mu_.lock(); }, [] { instance().mu_.unlock(); },
      [] { instance().mu_.unlock(); });
  (void)atfork_rc;
  return registry;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->data();
  return snap;
}

}  // namespace scaltool::obs
