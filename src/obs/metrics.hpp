// Metric registry: named counters, gauges and fixed-bucket histograms
// with lock-free hot-path updates.
//
// Registration (name lookup) takes a mutex and should happen once per
// call site — cache the returned reference; references stay valid for
// the process lifetime, across MetricRegistry::reset(). Updates are O(1)
// relaxed atomics and record nothing while telemetry is disabled (the
// hot path is then a single relaxed flag load).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace scaltool::obs {

/// Monotonically increasing tally.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Overwrites the value — for folding an externally maintained tally
  /// (e.g. EngineStats) into the registry, so the two cannot disagree.
  void set(std::uint64_t n) {
    if (enabled()) v_.store(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Exported state of one histogram. `bucket_counts` has bounds.size()+1
/// entries; the last is the overflow (> bounds.back()) bucket. min/max
/// are meaningful only when count > 0.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Upper-bound estimate of quantile q in [0,1] from the bucket counts.
  double quantile(double q) const;
};

/// Fixed-bucket histogram. Bucket bounds are frozen at registration;
/// observations update atomic per-bucket counts plus count/sum/min/max,
/// all lock-free.
class Histogram {
 public:
  /// `bounds` are ascending upper bounds; an implicit overflow bucket
  /// catches everything above the last. Empty means default_time_bounds().
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  HistogramData data() const;
  void reset();

  /// Decade buckets from 1 µs to 100 s — the default for span-shaped
  /// "seconds" observations.
  static std::vector<double> default_time_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Stable-ordered snapshot of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Folds histogram `b` into `a` (DESIGN.md §13): bucket counts, count and
/// sum add elementwise; min/max take the extremes (respecting count == 0
/// sides, whose min/max carry no information). An empty-count `a` with no
/// buckets is the merge identity. Histograms with differing bucket bounds
/// cannot be merged — CheckError.
HistogramData merge_histograms(const HistogramData& a, const HistogramData& b);

/// Folds `other` into `acc` with per-kind semantics: counters sum (totals
/// across processes), gauges take the max (a level, where "worst shard"
/// is the operative answer), histograms merge via merge_histograms.
void merge_snapshot_into(MetricsSnapshot& acc, const MetricsSnapshot& other);

/// Merges many snapshots (empty input merges to an empty snapshot).
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps);

class MetricRegistry {
 public:
  /// The process-wide registry every instrumentation site writes to.
  static MetricRegistry& instance();

  /// Find-or-create by name (mutex-guarded: cold path, cache the ref).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is honoured only on first registration of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Zeroes every value but keeps all registrations, so references
  /// handed out earlier stay valid.
  void reset();

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace scaltool::obs
