#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace scaltool::obs {

bool JsonValue::as_bool() const {
  ST_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  ST_CHECK_MSG(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  ST_CHECK_MSG(is_string(), "JSON value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  ST_CHECK_MSG(is_array(), "JSON value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  ST_CHECK_MSG(is_object(), "JSON value is not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  ST_CHECK_MSG(it != obj.end(), "JSON object has no member \"" << key << "\"");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

namespace {

/// Hard cap on container nesting. The parser reads untrusted bytes (the
/// analysis service's wire requests, user-supplied metrics files), so a
/// thousand-bracket line must fail with CheckError, not blow the stack.
constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    ST_CHECK_MSG(pos_ == text_.size(),
                 "trailing garbage after JSON document at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    ST_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    ST_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_
                                           << ", found '" << text_[pos_]
                                           << "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        ST_CHECK_MSG(consume_literal("true"), "bad literal at " << pos_);
        return JsonValue(true);
      case 'f':
        ST_CHECK_MSG(consume_literal("false"), "bad literal at " << pos_);
        return JsonValue(false);
      case 'n':
        ST_CHECK_MSG(consume_literal("null"), "bad literal at " << pos_);
        return JsonValue();
      default: return parse_number();
    }
  }

  /// Guards one level of container nesting for the enclosing scope.
  struct DepthGuard {
    explicit DepthGuard(int& depth) : depth_(depth) {
      ST_CHECK_MSG(++depth_ <= kMaxDepth,
                   "JSON nested deeper than " << kMaxDepth << " levels");
    }
    ~DepthGuard() { --depth_; }
    int& depth_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(depth_);
    expect('{');
    JsonValue::Object obj;
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      ST_CHECK_MSG(peek() == '"', "object key must be a string at " << pos_);
      std::string key = parse_string();
      expect(':');
      // Duplicate keys are silently dropped by most parsers — which turns
      // "last writer wins" into parser-dependent behaviour. Reject them.
      const bool inserted =
          obj.emplace(std::move(key), parse_value()).second;
      ST_CHECK_MSG(inserted, "duplicate JSON object key at offset " << pos_);
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(depth_);
    expect('[');
    JsonValue::Array arr;
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      ST_CHECK_MSG(pos_ < text_.size(), "unterminated escape in JSON string");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          ST_CHECK_MSG(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A') + 10;
            } else {
              ST_CHECK_MSG(false, "bad hex digit '" << h
                                                    << "' in \\u escape");
            }
            code = code * 16 + digit;
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our own exporters; decode them as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          ST_CHECK_MSG(false, "unknown escape \\" << esc << " in JSON string");
      }
    }
    ST_CHECK_MSG(false, "unterminated JSON string");
    return out;  // unreachable
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    ST_CHECK_MSG(pos_ > start, "expected a JSON value at offset " << start);
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    ST_CHECK_MSG(end && *end == '\0', "malformed JSON number \"" << token
                                                                << "\"");
    // strtod turns an overflowing literal (say 1e999) into inf; letting
    // that through would silently corrupt any arithmetic downstream.
    ST_CHECK_MSG(std::isfinite(v),
                 "JSON number \"" << token << "\" overflows a double");
    return JsonValue(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    std::ostringstream os;
    os << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "+inf" : "-inf")) << '"';
    return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

}  // namespace scaltool::obs
