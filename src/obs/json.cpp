#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace scaltool::obs {

bool JsonValue::as_bool() const {
  ST_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  ST_CHECK_MSG(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  ST_CHECK_MSG(is_string(), "JSON value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  ST_CHECK_MSG(is_array(), "JSON value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  ST_CHECK_MSG(is_object(), "JSON value is not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  ST_CHECK_MSG(it != obj.end(), "JSON object has no member \"" << key << "\"");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

namespace {

/// Hard cap on container nesting. The parser reads untrusted bytes (the
/// analysis service's wire requests, user-supplied metrics files), so a
/// thousand-bracket line must fail with CheckError, not blow the stack.
constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    ST_CHECK_MSG(pos_ == text_.size(),
                 "trailing garbage after JSON document at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    ST_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    ST_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_
                                           << ", found '" << text_[pos_]
                                           << "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        ST_CHECK_MSG(consume_literal("true"), "bad literal at " << pos_);
        return JsonValue(true);
      case 'f':
        ST_CHECK_MSG(consume_literal("false"), "bad literal at " << pos_);
        return JsonValue(false);
      case 'n':
        ST_CHECK_MSG(consume_literal("null"), "bad literal at " << pos_);
        return JsonValue();
      default: return parse_number();
    }
  }

  /// Guards one level of container nesting for the enclosing scope.
  struct DepthGuard {
    explicit DepthGuard(int& depth) : depth_(depth) {
      ST_CHECK_MSG(++depth_ <= kMaxDepth,
                   "JSON nested deeper than " << kMaxDepth << " levels");
    }
    ~DepthGuard() { --depth_; }
    int& depth_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(depth_);
    expect('{');
    JsonValue::Object obj;
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      ST_CHECK_MSG(peek() == '"', "object key must be a string at " << pos_);
      std::string key = parse_string();
      expect(':');
      // Duplicate keys are silently dropped by most parsers — which turns
      // "last writer wins" into parser-dependent behaviour. Reject them.
      const bool inserted =
          obj.emplace(std::move(key), parse_value()).second;
      ST_CHECK_MSG(inserted, "duplicate JSON object key at offset " << pos_);
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(depth_);
    expect('[');
    JsonValue::Array arr;
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      ST_CHECK_MSG(pos_ < text_.size(), "unterminated escape in JSON string");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          ST_CHECK_MSG(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A') + 10;
            } else {
              ST_CHECK_MSG(false, "bad hex digit '" << h
                                                    << "' in \\u escape");
            }
            code = code * 16 + digit;
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our own exporters; decode them as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          ST_CHECK_MSG(false, "unknown escape \\" << esc << " in JSON string");
      }
    }
    ST_CHECK_MSG(false, "unterminated JSON string");
    return out;  // unreachable
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    ST_CHECK_MSG(pos_ > start, "expected a JSON value at offset " << start);
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    ST_CHECK_MSG(end && *end == '\0', "malformed JSON number \"" << token
                                                                << "\"");
    // strtod turns an overflowing literal (say 1e999) into inf; letting
    // that through would silently corrupt any arithmetic downstream.
    ST_CHECK_MSG(std::isfinite(v),
                 "JSON number \"" << token << "\" overflows a double");
    return JsonValue(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

namespace {

void append_u_escape(std::string& out, unsigned char byte) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<int>(byte));
  out += buf;
}

/// Length of the valid UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not well-formed UTF-8 (truncated sequence, overlong
/// encoding, surrogate, or a code point above U+10FFFF).
std::size_t utf8_sequence_length(const std::string& s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  std::size_t len;
  std::uint32_t cp;
  if (b0 < 0x80) return 1;
  if ((b0 & 0xE0) == 0xC0) { len = 2; cp = b0 & 0x1F; }
  else if ((b0 & 0xF0) == 0xE0) { len = 3; cp = b0 & 0x0F; }
  else if ((b0 & 0xF8) == 0xF0) { len = 4; cp = b0 & 0x07; }
  else return 0;  // continuation byte or 0xF8..0xFF lead
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    if ((byte(i + k) & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (byte(i + k) & 0x3F);
  }
  static constexpr std::uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMinForLen[len]) return 0;           // overlong encoding
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;   // UTF-16 surrogate
  if (cp > 0x10FFFF) return 0;                  // beyond Unicode
  return len;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const unsigned char byte = static_cast<unsigned char>(c);
    if (byte < 0x20) {
      append_u_escape(out, byte);
      ++i;
      continue;
    }
    if (byte < 0x80) {
      out.push_back(c);
      ++i;
      continue;
    }
    // Non-ASCII: pass through only well-formed UTF-8. Anything else (span
    // args can carry arbitrary bytes) is escaped byte-by-byte as \u00XX so
    // the output always re-parses; the original byte value survives
    // legibly even though the string is no longer byte-identical.
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      append_u_escape(out, byte);
      ++i;
    } else {
      out.append(s, i, len);
      i += len;
    }
  }
  return out;
}

std::string json_serialize(const JsonValue& value) {
  std::ostringstream os;
  switch (value.kind()) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return value.as_bool() ? "true" : "false";
    case JsonValue::Kind::kNumber: return json_number(value.as_number());
    case JsonValue::Kind::kString:
      return "\"" + json_escape(value.as_string()) + "\"";
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& element : value.as_array()) {
        if (!first) os << ',';
        first = false;
        os << json_serialize(element);
      }
      os << ']';
      return os.str();
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, element] : value.as_object()) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(key) << "\":" << json_serialize(element);
      }
      os << '}';
      return os.str();
    }
  }
  return "null";  // unreachable
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    std::ostringstream os;
    os << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "+inf" : "-inf")) << '"';
    return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

}  // namespace scaltool::obs
