// Fuses per-process Chrome traces into one fleet timeline (DESIGN.md §13).
//
// Each process exports its own trace with chrome_trace_json(info); the
// document's "otherData" block carries the process's pid, display name and
// session epoch (MonoClock nanos). Because steady_clock is machine-wide
// monotonic on Linux, subtracting the earliest epoch puts every process's
// timestamps on one shared axis; merge then assigns each input a distinct
// deterministic pid lane (input order, 1-based) and regenerates the
// process_name metadata so viewers label the lanes.
#pragma once

#include <string>
#include <vector>

namespace scaltool::obs {

/// One input trace: the JSON document plus a fallback label used when the
/// document predates the "otherData" identity block.
struct NamedTrace {
  std::string label;
  std::string json;
};

/// Merges Chrome trace documents into one. Throws CheckError on an empty
/// input list or an input that is not a Chrome trace document.
std::string merge_chrome_traces(const std::vector<NamedTrace>& traces);

}  // namespace scaltool::obs
