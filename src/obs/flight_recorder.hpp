// Crash flight recorder (DESIGN.md §13): a fixed-size lock-free ring of
// recent span/request events, mmapped MAP_SHARED to a file so the bytes
// survive the process — including a SIGKILL mid-write.
//
// Hot-path contract:
//  - append() is wait-free: one relaxed fetch_add claims a slot, plain
//    stores fill it, and the slot's sequence word is written LAST with
//    release order. A crash between the claim and the final store leaves
//    the slot's sequence at 0, which salvage treats as "torn, drop" — so
//    the recovered prefix always parses.
//  - The installed-recorder check in the telemetry hooks is one relaxed
//    atomic load; with no recorder installed the hot path allocates
//    nothing and touches no shared state.
//  - A writer lapped by slot_count concurrent appends can tear a slot;
//    that slot fails the salvage consistency check (sequence vs position)
//    and is dropped, never misparsed. Size the ring so lapping within one
//    append is absurd (the default keeps the last 4096 events, 512 KiB).
//
// Fork safety: the supervisor forks workers from threaded parents. A
// child inheriting the parent's MAP_SHARED ring must not write into it,
// so the first install registers a pthread_atfork child handler that
// uninstalls the recorder on the child side; workers then install their
// own ring after the fork.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace scaltool::obs {

class FlightRecorder;

namespace detail {
extern std::atomic<FlightRecorder*> g_flight_recorder;
}  // namespace detail

/// One event salvaged from a ring.
struct FdrEvent {
  std::uint64_t seq = 0;     ///< global append number, 1-based
  std::int64_t ts_nanos = 0; ///< MonoClock nanos at append time
  char phase = 'i';          ///< 'B' begin, 'E' end, 'i' instant
  std::string name;
  std::string category;
  std::string detail;        ///< trace id, or "id=... op=..." for requests
};

/// Everything salvage recovered from a ring file.
struct FdrReport {
  bool valid = false;     ///< header parsed; events below are trustworthy
  std::string error;      ///< why valid is false
  std::int64_t pid = 0;   ///< writer pid recorded at ring creation
  std::uint64_t appended = 0;   ///< total events ever appended (cursor)
  std::uint64_t recovered = 0;  ///< slots salvaged below
  std::uint64_t torn = 0;       ///< slots dropped as torn or overwritten
  std::vector<FdrEvent> events; ///< oldest first, by sequence
  /// Details of "req" begin events with no matching end — the requests
  /// that were mid-execution when the writer died.
  std::vector<std::string> in_flight;
};

/// The mmapped ring. Create one per process that should leave evidence;
/// install it to route the Span/instant telemetry hooks into it.
class FlightRecorder {
 public:
  static constexpr std::uint32_t kDefaultSlots = 4096;

  /// Creates (truncating) and maps the ring file. CheckError on I/O
  /// failure or a silly geometry.
  explicit FlightRecorder(std::string path,
                          std::uint32_t slot_count = kDefaultSlots);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Wait-free, never throws, never allocates. Strings are truncated to
  /// the fixed slot fields. Null pointers are treated as "".
  void append(char phase, const char* name, const char* category,
              const char* detail) noexcept;

  const std::string& path() const { return path_; }
  std::uint64_t appended() const;

 private:
  std::string path_;
  std::uint32_t slot_count_ = 0;
  void* map_ = nullptr;     ///< whole mapping (header + slots)
  std::size_t map_size_ = 0;
  int fd_ = -1;
};

/// Routes the telemetry hooks into `recorder` (nullptr uninstalls). The
/// caller keeps ownership and must uninstall before destroying it.
void install_flight_recorder(FlightRecorder* recorder);
void uninstall_flight_recorder();

/// The installed recorder (relaxed load — safe on any hot path).
inline FlightRecorder* installed_flight_recorder() {
  return detail::g_flight_recorder.load(std::memory_order_relaxed);
}

/// Records one event through the installed recorder, if any. The hook the
/// analysis service uses for request begin/end markers.
void flight_record(char phase, const char* name, const char* category,
                   const std::string& detail);

/// Parses a ring file left by a (possibly dead) writer. Never throws:
/// an unreadable or corrupt file comes back with valid=false and the
/// reason in `error`; torn slots are counted and skipped.
FdrReport salvage_flight_record(const std::string& path);

/// Renders the post-mortem the supervisor writes when it reaps a dead
/// worker: cause of death, journal lag, in-flight request ids and the
/// last `tail` events.
std::string post_mortem_text(const FdrReport& report, int shard,
                             std::int64_t pid, const std::string& cause,
                             std::uint64_t journal_lag,
                             std::size_t tail = 16);

}  // namespace scaltool::obs
