// Process-wide telemetry: the enable flag, RAII spans, and the per-thread
// trace buffers behind the Chrome trace_event export.
//
// Design (ScALPEL's rule: the monitor must cost less than what it
// observes):
//  - One process-wide atomic enable flag, off by default. Every hot-path
//    entry point checks it first with a relaxed load, so disabled
//    telemetry costs one predicted branch and allocates nothing.
//  - Spans record begin/end ("B"/"E") pairs into a per-thread sink: a
//    thread only ever appends to its own buffer, so recording takes an
//    uncontended per-sink mutex (contended only during export, which runs
//    after workers are joined). Sinks are assigned small stable thread
//    ids in registration order and live for the process lifetime, so a
//    cached pointer can never dangle.
//  - Timestamps come from MonoClock (steady) relative to the session
//    start and are clamped non-decreasing per thread, so an exported
//    trace is stable-ordered and every viewer's sort is deterministic.
//
// Lifecycle: obs::enable() starts a fresh session (clears the trace,
// zeroes the metric registry, restamps t0); obs::disable() stops
// recording but keeps the data for export. Neither may be called while
// spans are open.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace scaltool::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while telemetry records. Relaxed load: safe on any hot path.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Starts a fresh telemetry session: clears all recorded trace events,
/// zeroes every metric in the registry, restamps the trace epoch.
void enable();

/// Stops recording; recorded data stays available for export.
void disable();

/// MonoClock nanos of the current session epoch (restamped by enable()).
/// Exported traces embed it so cross-process timelines can be rebased onto
/// one axis — steady_clock is machine-wide monotonic on Linux.
std::int64_t session_t0_nanos();

/// Ambient per-thread trace identity (DESIGN.md §13). A request minted at
/// the fleet front door carries its trace_id through the wire protocol;
/// the serving thread installs it with a TraceScope, and every Span
/// recorded under that scope tags its 'E' event with a `trace_id` arg, so
/// a merged fleet trace shows one request end to end.
struct TraceContext {
  std::string trace_id;
  std::string parent_span;

  bool active() const { return !trace_id.empty(); }
};

/// The calling thread's current trace context (empty when none installed).
const TraceContext& current_trace();

/// RAII installer for the thread's trace context: saves the previous
/// context and restores it on destruction, so nested scopes compose.
class TraceScope {
 public:
  explicit TraceScope(TraceContext context);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_;
};

/// Mints a process-unique trace id ("<prefix>-<16 hex>") from pid, a
/// monotonic timestamp and a process-wide sequence number.
std::string mint_trace_id(const char* prefix = "t");

/// One key=value annotation on a trace event. Numeric values are exported
/// as JSON numbers, everything else as strings.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// One Chrome trace_event record. `name`/`category` are static strings
/// (string literals at every call site), so recording never copies them.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'i';  ///< 'B' begin, 'E' end, 'i' instant
  double ts_us = 0.0;
  std::vector<TraceArg> args;
};

/// Everything one thread recorded, in recording order (ts non-decreasing).
struct ThreadTrace {
  int tid = 0;
  std::vector<TraceEvent> events;
};

/// Snapshot of every thread's events, ordered by tid; empty threads are
/// skipped. Safe to call while disabled; call after workers are joined.
std::vector<ThreadTrace> collect_trace();

/// RAII scoped timer: records a 'B' event at construction and the
/// matching 'E' (carrying the attached args) at destruction. When
/// telemetry is disabled the constructor returns immediately and the
/// object allocates nothing.
class Span {
 public:
  explicit Span(const char* name, const char* category = "app");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key=value argument, exported on the span's 'E' event.
  /// All overloads are no-ops (and allocation-free) on an inactive span.
  Span& arg(const char* key, const char* value);
  Span& arg(const char* key, const std::string& value);
  Span& arg(const char* key, double value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Span& arg(const char* key, T value) {
    if (!sink_) return *this;
    if constexpr (std::is_signed_v<T>)
      return arg_int(key, static_cast<std::int64_t>(value));
    else
      return arg_uint(key, static_cast<std::uint64_t>(value));
  }

  bool active() const { return sink_ != nullptr; }

 private:
  Span& arg_int(const char* key, std::int64_t value);
  Span& arg_uint(const char* key, std::uint64_t value);

  void* sink_ = nullptr;  ///< opaque ThreadSink*; null when inactive
  void* fdr_ = nullptr;   ///< opaque FlightRecorder*; null when none installed
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::vector<TraceArg> args_;
};

/// Records a zero-duration instant event ('i').
void instant(const char* name, const char* category = "app");

}  // namespace scaltool::obs
