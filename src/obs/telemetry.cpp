#include "obs/telemetry.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/monotime.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace scaltool::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// One thread's append-only event buffer. The mutex is uncontended on the
/// hot path (only the owning thread records); export locks it briefly
/// after workers are joined. Sinks are never destroyed, so the
/// thread_local pointer below can never dangle.
struct ThreadSink {
  int tid = 0;
  std::mutex mu;
  std::vector<TraceEvent> events;
  double last_ts_us = 0.0;
};

struct TraceBuffer {
  std::mutex mu;  ///< guards `sinks` (registration and export)
  std::vector<std::unique_ptr<ThreadSink>> sinks;
  /// Session epoch as MonoClock nanos, atomic so recording threads can
  /// read it without the registration lock.
  std::atomic<std::int64_t> t0_nanos{MonoClock::nanos()};
};

TraceBuffer& buffer() {
  static TraceBuffer* b = new TraceBuffer;  // intentionally leaked: sinks
  return *b;                                // outlive every worker thread
}

thread_local ThreadSink* t_sink = nullptr;
thread_local TraceContext t_trace;

ThreadSink* current_sink() {
  if (t_sink == nullptr) {
    TraceBuffer& b = buffer();
    std::lock_guard<std::mutex> lock(b.mu);
    auto sink = std::make_unique<ThreadSink>();
    sink->tid = static_cast<int>(b.sinks.size());
    t_sink = sink.get();
    b.sinks.push_back(std::move(sink));
  }
  return t_sink;
}

double session_now_us() {
  const std::int64_t t0 = buffer().t0_nanos.load(std::memory_order_relaxed);
  return static_cast<double>(MonoClock::nanos() - t0) * 1e-3;
}

/// Appends one event to `sink`, clamping its timestamp non-decreasing.
void record(ThreadSink* sink, TraceEvent event) {
  std::lock_guard<std::mutex> lock(sink->mu);
  event.ts_us = std::max(session_now_us(), sink->last_ts_us);
  sink->last_ts_us = event.ts_us;
  sink->events.push_back(std::move(event));
}

}  // namespace

void enable() {
  TraceBuffer& b = buffer();
  {
    std::lock_guard<std::mutex> lock(b.mu);
    for (const auto& sink : b.sinks) {
      std::lock_guard<std::mutex> sink_lock(sink->mu);
      sink->events.clear();
      sink->last_ts_us = 0.0;
    }
    b.t0_nanos.store(MonoClock::nanos(), std::memory_order_relaxed);
  }
  MetricRegistry::instance().reset();
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable() {
  detail::g_enabled.store(false, std::memory_order_release);
}

std::int64_t session_t0_nanos() {
  return buffer().t0_nanos.load(std::memory_order_relaxed);
}

const TraceContext& current_trace() { return t_trace; }

TraceScope::TraceScope(TraceContext context) : saved_(std::move(t_trace)) {
  t_trace = std::move(context);
}

TraceScope::~TraceScope() { t_trace = std::move(saved_); }

std::string mint_trace_id(const char* prefix) {
  static std::atomic<std::uint64_t> sequence{0};
  // FNV-mix pid, a monotonic timestamp and a process-wide sequence so ids
  // are unique across the fleet's processes and across restarts.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(::getpid()));
  mix(static_cast<std::uint64_t>(MonoClock::nanos()));
  mix(sequence.fetch_add(1, std::memory_order_relaxed));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(prefix) + "-" + hex;
}

std::vector<ThreadTrace> collect_trace() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  std::vector<ThreadTrace> out;
  for (const auto& sink : b.sinks) {
    std::lock_guard<std::mutex> sink_lock(sink->mu);
    if (sink->events.empty()) continue;
    out.push_back(ThreadTrace{sink->tid, sink->events});
  }
  return out;  // sinks are in tid order already
}

Span::Span(const char* name, const char* category) {
  FlightRecorder* recorder = installed_flight_recorder();
  if (!enabled() && recorder == nullptr) return;
  name_ = name;
  category_ = category;
  if (enabled()) {
    ThreadSink* sink = current_sink();
    sink_ = sink;
    // Tag the span with the ambient trace context so a merged fleet trace
    // can follow one request across processes. Stored as a leading arg:
    // the exporter keeps the LAST occurrence per key, so an explicit
    // span->arg("trace_id", ...) still wins.
    const TraceContext& ctx = current_trace();
    if (ctx.active()) args_.push_back(TraceArg{"trace_id", ctx.trace_id, false});
    record(sink, TraceEvent{name, category, 'B', 0.0, {}});
  }
  if (recorder != nullptr) {
    fdr_ = recorder;
    recorder->append('B', name, category, current_trace().trace_id.c_str());
  }
}

Span::~Span() {
  if (fdr_ != nullptr)
    static_cast<FlightRecorder*>(fdr_)->append(
        'E', name_, category_, current_trace().trace_id.c_str());
  if (sink_ == nullptr) return;
  record(static_cast<ThreadSink*>(sink_),
         TraceEvent{name_, category_, 'E', 0.0, std::move(args_)});
}

Span& Span::arg(const char* key, const char* value) {
  if (sink_) args_.push_back(TraceArg{key, value, false});
  return *this;
}

Span& Span::arg(const char* key, const std::string& value) {
  if (sink_) args_.push_back(TraceArg{key, value, false});
  return *this;
}

Span& Span::arg(const char* key, double value) {
  if (!sink_) return *this;
  args_.push_back(TraceArg{key, json_number(value), true});
  return *this;
}

Span& Span::arg_int(const char* key, std::int64_t value) {
  if (!sink_) return *this;
  args_.push_back(TraceArg{key, std::to_string(value), true});
  return *this;
}

Span& Span::arg_uint(const char* key, std::uint64_t value) {
  if (!sink_) return *this;
  args_.push_back(TraceArg{key, std::to_string(value), true});
  return *this;
}

void instant(const char* name, const char* category) {
  if (FlightRecorder* recorder = installed_flight_recorder())
    recorder->append('i', name, category, current_trace().trace_id.c_str());
  if (!enabled()) return;
  record(current_sink(), TraceEvent{name, category, 'i', 0.0, {}});
}

}  // namespace scaltool::obs
