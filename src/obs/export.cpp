#include "obs/export.hpp"

#include <fcntl.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "io/env.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace scaltool::obs {

namespace {

constexpr const char* kMetricsSchema = "scaltool-metrics";
constexpr int kMetricsVersion = 1;

void append_trace_args(std::ostream& os, const std::vector<TraceArg>& args) {
  if (args.empty()) return;
  os << ",\"args\":{";
  bool first = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const TraceArg& a = args[i];
    // Last occurrence of a key wins (the auto-attached trace_id loses to
    // an explicit span arg); the strict parser rejects duplicate keys, so
    // emitting both would make the trace unmergeable.
    bool superseded = false;
    for (std::size_t j = i + 1; j < args.size() && !superseded; ++j)
      superseded = args[j].key == a.key;
    if (superseded) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(a.key) << "\":";
    if (a.numeric)
      os << a.value;  // already a valid JSON number token
    else
      os << '"' << json_escape(a.value) << '"';
  }
  os << '}';
}

void append_event(std::ostream& os, std::int64_t pid, int tid,
                  const TraceEvent& e, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
     << json_escape(e.category) << "\",\"ph\":\"" << e.phase << "\",\"ts\":"
     << std::fixed << std::setprecision(3) << e.ts_us
     << std::defaultfloat << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (e.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
  append_trace_args(os, e.args);
  os << '}';
}

void append_histogram(std::ostream& os, const HistogramData& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
     << ",\"min\":" << json_number(h.min) << ",\"max\":"
     << json_number(h.max) << ",\"buckets\":[";
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"le\":";
    if (i < h.bounds.size())
      os << json_number(h.bounds[i]);
    else
      os << "\"+inf\"";
    os << ",\"count\":" << h.bucket_counts[i] << '}';
  }
  os << "]}";
}

}  // namespace

std::string chrome_trace_json() { return chrome_trace_json(TraceProcessInfo{}); }

std::string chrome_trace_json(const TraceProcessInfo& info) {
  const std::vector<ThreadTrace> threads = collect_trace();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"pid\":" << info.pid
     << ",\"process_name\":\"" << json_escape(info.process_name)
     << "\",\"t0_nanos\":" << session_t0_nanos() << "},\"traceEvents\":[\n";
  // Metadata first: a process name and one thread_name per thread, so the
  // viewer labels lanes even before the first real event.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << info.pid
     << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(info.process_name)
     << "\"}}";
  bool first = false;
  for (const ThreadTrace& t : threads)
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << info.pid
       << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\"thread-" << t.tid
       << "\"}}";
  for (const ThreadTrace& t : threads)
    for (const TraceEvent& e : t.events)
      append_event(os, info.pid, t.tid, e, first);
  os << "\n]}\n";
  return os.str();
}

std::string metrics_json(const MetricsSnapshot& snap, bool compact) {
  // In compact mode the document must be a single physical line — it is
  // embedded raw in the NDJSON wire protocol's stats_json field.
  const char* nl = compact ? "" : "\n";
  const char* indent = compact ? "" : "  ";
  std::ostringstream os;
  os << "{" << nl << "\"schema\":\"" << kMetricsSchema << "\"," << nl
     << "\"version\":" << kMetricsVersion << "," << nl << "\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? nl : (compact ? "," : ",\n")) << indent << "\""
       << json_escape(name) << "\":" << v;
    first = false;
  }
  os << (first ? "" : nl) << "}," << nl << "\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? nl : (compact ? "," : ",\n")) << indent << "\""
       << json_escape(name) << "\":" << json_number(v);
    first = false;
  }
  os << (first ? "" : nl) << "}," << nl << "\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? nl : (compact ? "," : ",\n")) << indent << "\""
       << json_escape(name) << "\":";
    append_histogram(os, h);
    first = false;
  }
  os << (first ? "" : nl) << "}" << nl << "}" << nl;
  return os.str();
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  const auto sanitize = [](const std::string& name) {
    std::string out = "scaltool_";
    for (const char c : name)
      out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    return out;
  };
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters) {
    const std::string p = sanitize(name) + "_total";
    os << "# TYPE " << p << " counter\n" << p << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = sanitize(name);
    os << "# TYPE " << p << " gauge\n" << p << ' ' << json_number(v) << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = sanitize(name);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      os << p << "_bucket{le=\"";
      if (i < h.bounds.size())
        os << json_number(h.bounds[i]);
      else
        os << "+Inf";
      os << "\"} " << cumulative << '\n';
    }
    os << p << "_sum " << json_number(h.sum) << '\n'
       << p << "_count " << h.count << '\n';
  }
  return os.str();
}

MetricsSnapshot parse_metrics_json(const std::string& text) {
  const JsonValue doc = json_parse(text);
  ST_CHECK_MSG(doc.is_object() && doc.has("schema") &&
                   doc.at("schema").as_string() == kMetricsSchema,
               "not a " << kMetricsSchema << " JSON document");
  MetricsSnapshot snap;
  for (const auto& [name, v] : doc.at("counters").as_object())
    snap.counters[name] = static_cast<std::uint64_t>(v.as_number());
  for (const auto& [name, v] : doc.at("gauges").as_object())
    snap.gauges[name] = v.as_number();
  for (const auto& [name, v] : doc.at("histograms").as_object()) {
    HistogramData h;
    h.count = static_cast<std::uint64_t>(v.at("count").as_number());
    h.sum = v.at("sum").as_number();
    h.min = v.at("min").as_number();
    h.max = v.at("max").as_number();
    for (const JsonValue& b : v.at("buckets").as_array()) {
      h.bucket_counts.push_back(
          static_cast<std::uint64_t>(b.at("count").as_number()));
      const JsonValue& le = b.at("le");
      if (le.is_number()) h.bounds.push_back(le.as_number());
      // the "+inf" overflow bucket contributes a count but no bound
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

std::vector<Table> metrics_tables(const MetricsSnapshot& snap) {
  std::vector<Table> tables;
  if (!snap.counters.empty()) {
    Table t("Counters");
    t.header({"counter", "value"});
    for (const auto& [name, v] : snap.counters)
      t.add_row({name, Table::cell(v)});
    tables.push_back(std::move(t));
  }
  if (!snap.gauges.empty()) {
    Table t("Gauges");
    t.header({"gauge", "value"});
    for (const auto& [name, v] : snap.gauges)
      t.add_row({name, Table::cell(v, 6)});
    tables.push_back(std::move(t));
  }
  if (!snap.histograms.empty()) {
    Table t("Histograms");
    t.header({"histogram", "count", "mean", "min", "max", "p50", "p95"});
    for (const auto& [name, h] : snap.histograms)
      t.add_row({name, Table::cell(h.count), Table::cell(h.mean(), 6),
                 Table::cell(h.min, 6), Table::cell(h.max, 6),
                 Table::cell(h.quantile(0.50), 6),
                 Table::cell(h.quantile(0.95), 6)});
    tables.push_back(std::move(t));
  }
  return tables;
}

void write_text_file(const std::string& path, const std::string& content) {
  io::Env& env = io::Env::instance();
  const int fd =
      env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    const int err = errno;
    if (io::is_storage_errno(err))
      throw io::StorageError(
          "cannot open " + path + " for writing: " + std::strerror(err), err);
    ST_CHECK_MSG(false, "cannot open " << path << " for writing: "
                                       << std::strerror(err));
  }
  try {
    io::write_all(env, fd, content.data(), content.size(), path);
  } catch (...) {
    env.close(fd);
    throw;
  }
  if (env.close(fd) != 0) {
    const int err = errno;
    throw io::StorageError("close of " + path + " failed: " +
                               std::strerror(err),
                           err);
  }
}

bool try_write_text_file(const std::string& path, const std::string& content) {
  try {
    write_text_file(path, content);
    return true;
  } catch (const std::exception&) {
    // Telemetry is an observer, never a participant: a full disk costs the
    // export, not the campaign. The drop itself is observable.
    MetricRegistry::instance().counter("obs.dropped_writes").add(1);
    return false;
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.good(), "cannot open " << path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace scaltool::obs
