#include "obs/export.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace scaltool::obs {

namespace {

constexpr const char* kMetricsSchema = "scaltool-metrics";
constexpr int kMetricsVersion = 1;

void append_trace_args(std::ostream& os, const std::vector<TraceArg>& args) {
  if (args.empty()) return;
  os << ",\"args\":{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(a.key) << "\":";
    if (a.numeric)
      os << a.value;  // already a valid JSON number token
    else
      os << '"' << json_escape(a.value) << '"';
  }
  os << '}';
}

void append_event(std::ostream& os, int tid, const TraceEvent& e,
                  bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
     << json_escape(e.category) << "\",\"ph\":\"" << e.phase << "\",\"ts\":"
     << std::fixed << std::setprecision(3) << e.ts_us
     << std::defaultfloat << ",\"pid\":0,\"tid\":" << tid;
  if (e.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
  append_trace_args(os, e.args);
  os << '}';
}

void append_histogram(std::ostream& os, const HistogramData& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
     << ",\"min\":" << json_number(h.min) << ",\"max\":"
     << json_number(h.max) << ",\"buckets\":[";
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"le\":";
    if (i < h.bounds.size())
      os << json_number(h.bounds[i]);
    else
      os << "\"+inf\"";
    os << ",\"count\":" << h.bucket_counts[i] << '}';
  }
  os << "]}";
}

}  // namespace

std::string chrome_trace_json() {
  const std::vector<ThreadTrace> threads = collect_trace();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Metadata first: a process name and one thread_name per thread, so the
  // viewer labels lanes even before the first real event.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"scaltool\"}}";
  bool first = false;
  for (const ThreadTrace& t : threads)
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << t.tid << ",\"args\":{\"name\":\"thread-" << t.tid << "\"}}";
  for (const ThreadTrace& t : threads)
    for (const TraceEvent& e : t.events) append_event(os, t.tid, e, first);
  os << "\n]}\n";
  return os.str();
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\n\"schema\":\"" << kMetricsSchema << "\",\n\"version\":"
     << kMetricsVersion << ",\n\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "\n" : ",\n") << "  \"" << json_escape(name) << "\":" << v;
    first = false;
  }
  os << (first ? "" : "\n") << "},\n\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "\n" : ",\n") << "  \"" << json_escape(name)
       << "\":" << json_number(v);
    first = false;
  }
  os << (first ? "" : "\n") << "},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "\n" : ",\n") << "  \"" << json_escape(name) << "\":";
    append_histogram(os, h);
    first = false;
  }
  os << (first ? "" : "\n") << "}\n}\n";
  return os.str();
}

MetricsSnapshot parse_metrics_json(const std::string& text) {
  const JsonValue doc = json_parse(text);
  ST_CHECK_MSG(doc.is_object() && doc.has("schema") &&
                   doc.at("schema").as_string() == kMetricsSchema,
               "not a " << kMetricsSchema << " JSON document");
  MetricsSnapshot snap;
  for (const auto& [name, v] : doc.at("counters").as_object())
    snap.counters[name] = static_cast<std::uint64_t>(v.as_number());
  for (const auto& [name, v] : doc.at("gauges").as_object())
    snap.gauges[name] = v.as_number();
  for (const auto& [name, v] : doc.at("histograms").as_object()) {
    HistogramData h;
    h.count = static_cast<std::uint64_t>(v.at("count").as_number());
    h.sum = v.at("sum").as_number();
    h.min = v.at("min").as_number();
    h.max = v.at("max").as_number();
    for (const JsonValue& b : v.at("buckets").as_array()) {
      h.bucket_counts.push_back(
          static_cast<std::uint64_t>(b.at("count").as_number()));
      const JsonValue& le = b.at("le");
      if (le.is_number()) h.bounds.push_back(le.as_number());
      // the "+inf" overflow bucket contributes a count but no bound
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

std::vector<Table> metrics_tables(const MetricsSnapshot& snap) {
  std::vector<Table> tables;
  if (!snap.counters.empty()) {
    Table t("Counters");
    t.header({"counter", "value"});
    for (const auto& [name, v] : snap.counters)
      t.add_row({name, Table::cell(v)});
    tables.push_back(std::move(t));
  }
  if (!snap.gauges.empty()) {
    Table t("Gauges");
    t.header({"gauge", "value"});
    for (const auto& [name, v] : snap.gauges)
      t.add_row({name, Table::cell(v, 6)});
    tables.push_back(std::move(t));
  }
  if (!snap.histograms.empty()) {
    Table t("Histograms");
    t.header({"histogram", "count", "mean", "min", "max", "p50", "p95"});
    for (const auto& [name, h] : snap.histograms)
      t.add_row({name, Table::cell(h.count), Table::cell(h.mean(), 6),
                 Table::cell(h.min, 6), Table::cell(h.max, 6),
                 Table::cell(h.quantile(0.50), 6),
                 Table::cell(h.quantile(0.95), 6)});
    tables.push_back(std::move(t));
  }
  return tables;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::trunc);
  ST_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os << content;
  os.flush();
  ST_CHECK_MSG(os.good(), "write to " << path << " failed");
}

std::string read_text_file(const std::string& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.good(), "cannot open " << path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace scaltool::obs
