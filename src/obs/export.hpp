// Telemetry exporters: Chrome trace_event JSON, machine-readable metrics
// JSON (with a parser for `scaltool stats`), and human Table summaries.
//
// Both JSON formats are stable-ordered — metrics by name, trace events by
// (tid, recording order) with per-thread non-decreasing timestamps — so
// tests can diff structure and dashboards can diff content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/metrics.hpp"

namespace scaltool::obs {

/// Identity stamped into an exported trace so trace-merge can label its
/// lane and rebase its clock (DESIGN.md §13).
struct TraceProcessInfo {
  std::int64_t pid = 0;
  std::string process_name = "scaltool";
};

/// Renders everything recorded since enable() as Chrome trace_event JSON
/// (load in chrome://tracing or https://ui.perfetto.dev). Emits process
/// and per-thread metadata, then each thread's events in order. The
/// document carries an "otherData" block ({pid, process_name, t0_nanos})
/// so merge_chrome_traces can put several processes on one time axis.
std::string chrome_trace_json();
std::string chrome_trace_json(const TraceProcessInfo& info);

/// Stable machine-readable rendering of a metrics snapshot:
/// {"schema":"scaltool-metrics","version":1,"counters":{...},
///  "gauges":{...},"histograms":{...}} with keys sorted. With
/// compact=true the document is a single line (no newlines at all), so it
/// can ride inside the NDJSON wire protocol's `stats_json` field.
std::string metrics_json(const MetricsSnapshot& snap, bool compact = false);

/// Prometheus text exposition (version 0.0.4) of a snapshot. Metric names
/// are sanitized (`scaltool_` prefix, non-alphanumerics become `_`);
/// counters get `_total`, histograms emit cumulative `_bucket{le="..."}`
/// series plus `_sum` and `_count`.
std::string prometheus_text(const MetricsSnapshot& snap);

/// Parses metrics_json output back. Throws CheckError on malformed input
/// or a wrong schema tag.
MetricsSnapshot parse_metrics_json(const std::string& text);

/// Human summary: a counters table, a gauges table and a histograms table
/// (count/mean/min/max plus estimated p50/p95). Empty sections are
/// omitted.
std::vector<Table> metrics_tables(const MetricsSnapshot& snap);

/// Writes `content` to `path` (truncating), through the process io::Env
/// so storage-fault drills cover telemetry exports too. Throws
/// io::StorageError when the disk is the problem (ENOSPC/EIO/...),
/// CheckError otherwise.
void write_text_file(const std::string& path, const std::string& content);

/// Best-effort variant for writers that must degrade rather than fail the
/// work they observe: returns false on any failure and counts the drop in
/// the `obs.dropped_writes` counter.
bool try_write_text_file(const std::string& path, const std::string& content);

/// Reads a whole file. Throws CheckError when it cannot be opened.
std::string read_text_file(const std::string& path);

}  // namespace scaltool::obs
