#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace scaltool::obs {

namespace {

struct ParsedTrace {
  std::string process_name;
  std::int64_t t0_nanos = 0;
  std::vector<JsonValue> events;
};

ParsedTrace parse_input(const NamedTrace& input) {
  const JsonValue doc = json_parse(input.json);
  ST_CHECK_MSG(doc.is_object() && doc.has("traceEvents"),
               "trace for \"" << input.label
                              << "\" is not a Chrome trace document");
  ParsedTrace out;
  out.process_name = input.label;
  if (doc.has("otherData")) {
    const JsonValue& other = doc.at("otherData");
    if (other.has("process_name"))
      out.process_name = other.at("process_name").as_string();
    if (other.has("t0_nanos"))
      out.t0_nanos = static_cast<std::int64_t>(other.at("t0_nanos").as_number());
  }
  out.events = doc.at("traceEvents").as_array();
  return out;
}

}  // namespace

std::string merge_chrome_traces(const std::vector<NamedTrace>& traces) {
  ST_CHECK_MSG(!traces.empty(), "trace-merge needs at least one input trace");
  std::vector<ParsedTrace> inputs;
  inputs.reserve(traces.size());
  for (const NamedTrace& t : traces) inputs.push_back(parse_input(t));

  // Rebase every input onto the earliest session epoch. Inputs without an
  // epoch (t0_nanos == 0, pre-§13 traces) keep their own timestamps.
  std::int64_t min_t0 = 0;
  for (const ParsedTrace& in : inputs)
    if (in.t0_nanos > 0 && (min_t0 == 0 || in.t0_nanos < min_t0))
      min_t0 = in.t0_nanos;

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&os, &first](const JsonValue& event) {
    if (!first) os << ",\n";
    first = false;
    os << json_serialize(event);
  };

  for (std::size_t index = 0; index < inputs.size(); ++index) {
    const ParsedTrace& in = inputs[index];
    const double out_pid = static_cast<double>(index + 1);
    const double offset_us =
        in.t0_nanos > 0 ? static_cast<double>(in.t0_nanos - min_t0) * 1e-3
                        : 0.0;

    JsonValue::Object meta;
    meta["name"] = JsonValue(std::string("process_name"));
    meta["ph"] = JsonValue(std::string("M"));
    meta["pid"] = JsonValue(out_pid);
    meta["tid"] = JsonValue(0.0);
    JsonValue::Object meta_args;
    meta_args["name"] = JsonValue(in.process_name);
    meta["args"] = JsonValue(std::move(meta_args));
    emit(JsonValue(std::move(meta)));

    for (const JsonValue& event : in.events) {
      JsonValue::Object fields = event.as_object();
      // Drop each input's own process_name meta — the lane is renamed
      // above; keep thread_name metas so thread lanes stay labeled.
      const auto name_it = fields.find("name");
      if (name_it != fields.end() && name_it->second.is_string() &&
          name_it->second.as_string() == "process_name")
        continue;
      fields["pid"] = JsonValue(out_pid);
      const auto ts_it = fields.find("ts");
      if (ts_it != fields.end() && ts_it->second.is_number())
        ts_it->second = JsonValue(ts_it->second.as_number() + offset_us);
      emit(JsonValue(std::move(fields)));
    }
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace scaltool::obs
