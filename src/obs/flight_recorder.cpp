#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <pthread.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <sstream>

#include "common/check.hpp"
#include "common/monotime.hpp"

namespace scaltool::obs {

namespace detail {
std::atomic<FlightRecorder*> g_flight_recorder{nullptr};
}  // namespace detail

namespace {

constexpr char kMagic[16] = "scaltool-fdr";
constexpr std::uint32_t kVersion = 1;

/// File header, one per ring. The magic is written after the geometry, so
/// a crash during creation leaves a file salvage rejects cleanly.
struct FdrHeader {
  char magic[16];
  std::uint32_t version;
  std::uint32_t slot_size;
  std::uint32_t slot_count;
  std::uint32_t reserved;
  std::int64_t pid;
  std::int64_t created_nanos;
  std::atomic<std::uint64_t> cursor;  ///< total appends ever
  char pad[128 - 16 - 4 * 4 - 8 - 8 - 8];
};
static_assert(sizeof(FdrHeader) == 128, "header layout is wire format");

/// One fixed-width event slot. `seq` (claim + 1) is written last with
/// release order; 0 marks an unwritten or torn slot.
struct FdrSlot {
  std::atomic<std::uint64_t> seq;
  std::int64_t ts_nanos;
  char phase;
  char name[47];
  char category[24];
  char detail[40];
};
static_assert(sizeof(FdrSlot) == 128, "slot layout is wire format");

void copy_field(char* dst, std::size_t cap, const char* src) noexcept {
  if (src == nullptr) src = "";
  std::size_t n = 0;
  while (n + 1 < cap && src[n] != '\0') {
    dst[n] = src[n];
    ++n;
  }
  dst[n] = '\0';
}

std::string field_string(const char* src, std::size_t cap) {
  const std::size_t n =
      static_cast<std::size_t>(std::find(src, src + cap, '\0') - src);
  return std::string(src, n);
}

std::once_flag g_atfork_once;

void register_atfork_uninstall() {
  std::call_once(g_atfork_once, [] {
    // A forked child inherits the parent's MAP_SHARED ring; writing into
    // it from two processes would interleave garbage. The child starts
    // with no recorder and installs its own.
    ::pthread_atfork(nullptr, nullptr, [] {
      detail::g_flight_recorder.store(nullptr, std::memory_order_relaxed);
    });
  });
}

}  // namespace

FlightRecorder::FlightRecorder(std::string path, std::uint32_t slot_count)
    : path_(std::move(path)), slot_count_(slot_count) {
  ST_CHECK_MSG(slot_count_ >= 8 && slot_count_ <= (1u << 24),
               "flight recorder needs between 8 and 2^24 slots");
  fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  ST_CHECK_MSG(fd_ >= 0, "cannot create flight-recorder ring " << path_);
  map_size_ = sizeof(FdrHeader) +
              static_cast<std::size_t>(slot_count_) * sizeof(FdrSlot);
  if (::ftruncate(fd_, static_cast<off_t>(map_size_)) != 0) {
    ::close(fd_);
    fd_ = -1;
    ST_CHECK_MSG(false, "cannot size flight-recorder ring " << path_);
  }
  map_ = ::mmap(nullptr, map_size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                0);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    ::close(fd_);
    fd_ = -1;
    ST_CHECK_MSG(false, "cannot map flight-recorder ring " << path_);
  }
  auto* header = static_cast<FdrHeader*>(map_);
  // ftruncate zero-filled everything; write the geometry, then the magic
  // last, so a crash mid-creation never yields a half-valid header.
  header->version = kVersion;
  header->slot_size = sizeof(FdrSlot);
  header->slot_count = slot_count_;
  header->pid = static_cast<std::int64_t>(::getpid());
  header->created_nanos = MonoClock::nanos();
  header->cursor.store(0, std::memory_order_relaxed);
  std::memcpy(header->magic, kMagic, sizeof(header->magic));
}

FlightRecorder::~FlightRecorder() {
  if (installed_flight_recorder() == this) uninstall_flight_recorder();
  if (map_ != nullptr) ::munmap(map_, map_size_);
  if (fd_ >= 0) ::close(fd_);
}

void FlightRecorder::append(char phase, const char* name,
                            const char* category,
                            const char* detail) noexcept {
  auto* header = static_cast<FdrHeader*>(map_);
  const std::uint64_t claim =
      header->cursor.fetch_add(1, std::memory_order_relaxed);
  auto* slots = reinterpret_cast<FdrSlot*>(static_cast<char*>(map_) +
                                           sizeof(FdrHeader));
  FdrSlot& slot = slots[claim % slot_count_];
  // Invalidate first: a reader (or a crash) between here and the final
  // store sees seq == 0 and drops the slot instead of mixing old and new.
  slot.seq.store(0, std::memory_order_release);
  slot.ts_nanos = MonoClock::nanos();
  slot.phase = phase;
  copy_field(slot.name, sizeof(slot.name), name);
  copy_field(slot.category, sizeof(slot.category), category);
  copy_field(slot.detail, sizeof(slot.detail), detail);
  slot.seq.store(claim + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::appended() const {
  return static_cast<const FdrHeader*>(map_)->cursor.load(
      std::memory_order_relaxed);
}

void install_flight_recorder(FlightRecorder* recorder) {
  register_atfork_uninstall();
  detail::g_flight_recorder.store(recorder, std::memory_order_release);
}

void uninstall_flight_recorder() {
  detail::g_flight_recorder.store(nullptr, std::memory_order_release);
}

void flight_record(char phase, const char* name, const char* category,
                   const std::string& detail) {
  if (FlightRecorder* recorder = installed_flight_recorder())
    recorder->append(phase, name, category, detail.c_str());
}

FdrReport salvage_flight_record(const std::string& path) {
  FdrReport report;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    report.error = "cannot open " + path;
    return report;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(FdrHeader)) {
    ::close(fd);
    report.error = path + " is too small to be a flight-recorder ring";
    return report;
  }
  std::vector<char> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::pread(fd, bytes.data() + off, bytes.size() - off,
                static_cast<off_t>(off));
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (off < bytes.size()) {
    report.error = "short read on " + path;
    return report;
  }

  FdrHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(header.magic)) != 0) {
    report.error = path + " has no flight-recorder magic";
    return report;
  }
  if (header.version != kVersion || header.slot_size != sizeof(FdrSlot)) {
    report.error = path + " has an unsupported ring version or slot size";
    return report;
  }
  const std::uint64_t slot_count = header.slot_count;
  if (slot_count == 0 ||
      bytes.size() < sizeof(FdrHeader) + slot_count * sizeof(FdrSlot)) {
    report.error = path + " is truncated";
    return report;
  }
  report.valid = true;
  report.pid = header.pid;
  report.appended = header.cursor.load(std::memory_order_relaxed);

  const std::uint64_t expected_filled = std::min(report.appended, slot_count);
  for (std::uint64_t i = 0; i < slot_count; ++i) {
    FdrSlot slot;
    std::memcpy(&slot, bytes.data() + sizeof(FdrHeader) + i * sizeof(FdrSlot),
                sizeof(slot));
    const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    if (seq == 0) {
      // Unwritten (ring not yet full) or torn mid-write.
      if (i < expected_filled) ++report.torn;
      continue;
    }
    // Consistency: the sequence must map back to this slot and be no newer
    // than the cursor — anything else is a lapped or corrupt slot.
    if ((seq - 1) % slot_count != i || seq > report.appended) {
      ++report.torn;
      continue;
    }
    FdrEvent event;
    event.seq = seq;
    event.ts_nanos = slot.ts_nanos;
    event.phase = slot.phase;
    event.name = field_string(slot.name, sizeof(slot.name));
    event.category = field_string(slot.category, sizeof(slot.category));
    event.detail = field_string(slot.detail, sizeof(slot.detail));
    report.events.push_back(std::move(event));
  }
  std::sort(report.events.begin(), report.events.end(),
            [](const FdrEvent& a, const FdrEvent& b) { return a.seq < b.seq; });
  report.recovered = report.events.size();

  // A "req" begin with no later matching end is a request the writer took
  // to the grave. Ends without a visible begin (begin rotated out of the
  // ring) are ignored.
  std::vector<std::string> open;
  for (const FdrEvent& event : report.events) {
    if (event.name != "req") continue;
    if (event.phase == 'B') {
      open.push_back(event.detail);
    } else if (event.phase == 'E') {
      const auto it = std::find(open.begin(), open.end(), event.detail);
      if (it != open.end()) open.erase(it);
    }
  }
  report.in_flight = std::move(open);
  return report;
}

std::string post_mortem_text(const FdrReport& report, int shard,
                             std::int64_t pid, const std::string& cause,
                             std::uint64_t journal_lag, std::size_t tail) {
  std::ostringstream os;
  os << "scaltool post-mortem: shard " << shard << " pid " << pid << "\n"
     << "cause: " << cause << "\n"
     << "journal_lag: " << journal_lag
     << " (runs a resume must re-simulate at most)\n";
  if (!report.valid) {
    os << "flight recorder: unavailable (" << report.error << ")\n";
    return os.str();
  }
  os << "flight recorder: " << report.appended << " events appended, "
     << report.recovered << " recovered, " << report.torn << " torn\n";
  os << "in-flight requests: " << report.in_flight.size() << "\n";
  for (const std::string& request : report.in_flight)
    os << "  in-flight: " << request << "\n";
  const std::size_t n = report.events.size();
  const std::size_t from = n > tail ? n - tail : 0;
  os << "last " << (n - from) << " events (oldest first):\n";
  for (std::size_t i = from; i < n; ++i) {
    const FdrEvent& event = report.events[i];
    os << "  #" << event.seq << " " << event.phase << " " << event.category
       << "/" << event.name;
    if (!event.detail.empty()) os << " [" << event.detail << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace scaltool::obs
